"""Vectorized PathFinder negotiation core (numpy over the CSR arrays).

:class:`VectorizedPathFinderRouter` re-implements the two hot
relaxation loops of :class:`~repro.route.router.PathFinderRouter`
(`_route_connection` and `_route_connection_timed`) around a simple
observation: during one connection search the congestion state is
frozen — occupancy, history, the net's own reference counts and the
bit-sharing reference counts only change *between* searches.  A node's
price is therefore a pure function of the node for the whole search,
so instead of pricing nodes lazily one dict probe at a time, the
router prices the **entire graph at once** as numpy array math over
the CSR views introduced with the flat-graph refactor:

``price = (base + history) * (1 + pres_fac * overuse) [* affinities]``
``edge cost = crit * delay + (1 - crit) * (price + noise)``

The untimed A* heuristic is batched the same way (one
Manhattan-distance vector per target, cached across searches; the
timed loops keep the scalar per-push expression — their
criticality-scaled weight defeats caching), and the relaxation loop
then reads one precomputed Python list per scanned edge (``tolist()``
keeps scalar access cheap) — no per-mode loops, no dict membership
probes, no noise hashing in the inner loop.  The bit-sharing
discount's occupancy gate is folded into the discounted price vector
itself (``where(overused, plain, discounted)``), so even that path
costs one set probe per edge.

**Bit identity.**  Every float expression keeps the reference
implementation's exact operation order and grouping (float addition is
not associative; a one-ULP difference flips equal-cost tie-breaks), so
the vectorized search makes byte-identical decisions: identical
routes, wirelength, iteration counts and cached-result pickles.  The
only structural liberty taken is scanning a node's sink-bound edges
after its other edges — legal because a blocked sink is skipped either
way, relaxations of different destination nodes are independent, and
the heap pops entries in value order regardless of push order.  The
A/B property test (``tests/test_router_equivalence.py``) asserts
bit-identity across circuit families, pricing modes and connection
shapes, and ``REPRO_SCALAR_ROUTER=1`` swaps the scalar reference back
in at construction time (the nightly CI runs the whole tier-1 suite
that way so the reference path cannot rot).

**Price-vector reuse.**  Connections of one net route consecutively,
and adding or removing a route of the *same net* whose activation set
is a subset of a priced connection's cannot change that connection's
prices: for every mode the route and the pricing context share,
occupancy and the net's own reference counts move together, so
``occ_after = occ + (0 if already else 1)`` is invariant; modes
outside the route's set are untouched, and a subset activation set
cannot reach the pricing context's *other*-mode affinity state.  The
router therefore keeps one price entry per activation set of the
current net (TRoute requests mix ``{0}``, ``{1}`` and ``{0, 1}``
connections of one net), drops an entry only when an update escapes
its subset guarantee, and clears the lot when the net or the
present-cost factor moves on or when the negotiation loop raises
history costs (the ``_history_updated`` hook — ``pres_fac`` alone
would not cover it, since ``pres_fac_mult`` may be 1.0) — one vector
build prices a whole net's fan-out.
"""

from __future__ import annotations

import gc
import zlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.rrg import SINK, WIRE
from repro.route.router import (
    ConnectionRoute,
    PathFinderRouter,
    RouteRequest,
    RoutingError,
)
from repro.route.searchkernel import (
    EMPTY_STATIC,
    heap_search_timed,
    heap_search_untimed,
)

#: Knuth's multiplicative-hash constant — must match the scalar
#: reference's per-(net, node) tie-break jitter exactly.
_NOISE_MUL = 0x9E3779B9

#: Heuristic-vector cache bound: evict least-recently-used entries
#: once the cached lists hold more than this many floats (~16 MB).
#: Untimed routing keys by target only and never comes close; timed
#: routing keys by (target, astar_fac) and would otherwise grow one
#: entry per connection.
_H_CACHE_MAX_FLOATS = 2_000_000

#: Distance sentinels of the relaxation loops: +inf marks a node not
#: yet seen in this search (any relaxation improves it — the scalar
#: reference's epoch check) and -inf marks a settled node (nothing
#: improves it — the scalar reference's visited check).
_INF = float("inf")
_NEG_INF = float("-inf")


class VectorizedPathFinderRouter(PathFinderRouter):
    """PathFinder with array-level pricing; bit-identical to scalar.

    Everything outside the two search methods (occupancy bookkeeping,
    the negotiation main loop, bit-sharing sweeps, trunk seeding) is
    inherited; only the containers the array math reads — occupancy
    and history — become numpy arrays.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        rrg = self.rrg
        n = rrg.n_nodes
        # numpy twins of the congestion state.  Scalar bookkeeping
        # (`occ[node] += 1`) works unchanged on them; the price build
        # reads them whole.
        self._occ = [
            np.zeros(n, dtype=np.int64) for _ in range(self.n_modes)
        ]
        self._hist = np.zeros(n, dtype=np.float64)
        # Immutable per-graph vectors.
        self._np_base = np.asarray(self._base, dtype=np.float64)
        self._np_cap = np.asarray(rrg.node_capacity, dtype=np.int64)
        self._np_x = np.asarray(rrg.node_x, dtype=np.int64)
        self._np_y = np.asarray(rrg.node_y, dtype=np.int64)
        kinds = rrg.node_kind
        self._wire_mask = (
            np.asarray(kinds, dtype=np.int64) == WIRE
        )
        # Neighbor tuples split by destination kind: the inner loop
        # scans sink-free edges with no kind check at all, and the one
        # sink edge a pin node may have is handled separately (a
        # blocked sink is skipped either way, so the reordering cannot
        # change any relaxation — see the module docstring).
        nbr_main: List[Tuple[Tuple[int, int], ...]] = []
        nbr_sink: List[Tuple[Tuple[int, int], ...]] = []
        for edges in rrg.adjacency:
            main: List[Tuple[int, int]] = []
            sink: List[Tuple[int, int]] = []
            for dst, bit in edges:
                (sink if kinds[dst] == SINK else main).append(
                    (dst, bit)
                )
            nbr_main.append(tuple(main))
            nbr_sink.append(tuple(sink))
        self._nbr_main = nbr_main
        self._nbr_sink = nbr_sink
        # Per-node part of the tie-break jitter; XORing the net salt
        # in is the only per-search step.
        self._noise_mul = np.arange(n, dtype=np.int64) * _NOISE_MUL
        if self._node_delay is not None:
            # Same per-edge `delay + switch_delay` add as the scalar
            # loop, hoisted into one list read.
            switch_delay = self.timing.model.switch_delay
            self._node_delay_switch = [
                d + switch_delay for d in self._node_delay
            ]
        # Per-net noise vector (nets route consecutively, so a
        # one-entry cache hits for every connection after the first).
        self._noise_salt: Optional[int] = None
        self._noise01: Optional[np.ndarray] = None
        # Price entries of the current (net, pres_fac), one per
        # activation set; see the module docstring for the
        # reuse-safety argument behind _invalidate_prices.
        self._price_net: Optional[str] = None
        self._price_pres: Optional[float] = None
        self._price_entries: Dict[FrozenSet[int], Tuple] = {}
        # Heuristic vectors keyed by (target, astar_fac).
        self._h_cache: Dict[Tuple[int, float], List[float]] = {}
        self._n_nodes = n

    # -- main loop -----------------------------------------------------------

    def route(self, requests: Sequence[RouteRequest]):
        """Negotiate all requests with the cyclic GC paused.

        The searches allocate millions of short-lived, acyclic heap
        tuples; every ~700 of them trigger a generation-0 collection
        that scans the young objects for cycles that cannot exist.
        Pausing collection for the duration is worth ~5% wall clock
        and cannot leak — nothing allocated here is cyclic, and the
        previous GC state is restored even on RoutingError.
        """
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return super().route(requests)
        finally:
            if was_enabled:
                gc.enable()

    def _init_scratch(self, n: int) -> None:
        """The vectorized loops price via whole-graph vectors and a
        fresh sentinel dist list per search, so the scalar core's
        seven O(n) scratch arrays are never allocated here."""

    # -- cache invalidation --------------------------------------------------

    def _history_updated(self) -> None:
        # Price vectors fold history costs in; entries built against
        # the old history are stale the moment the negotiation loop
        # raises it.  (The (net, pres_fac) key alone does not cover
        # this: pres_fac_mult may be 1.0.)
        self._price_entries.clear()

    def _invalidate_prices(self, route: ConnectionRoute) -> None:
        entries = self._price_entries
        if not entries:
            return
        if route.request.net != self._price_net:
            entries.clear()
            return
        modes = route.request.modes
        for key in [k for k in entries if not modes <= k]:
            del entries[key]

    def _add_route(self, route: ConnectionRoute) -> None:
        super()._add_route(route)
        self._invalidate_prices(route)

    def _remove_route(self, route: ConnectionRoute) -> None:
        super()._remove_route(route)
        self._invalidate_prices(route)

    def _rebuild_state(
        self, routes: Dict[int, ConnectionRoute]
    ) -> None:
        self._price_entries.clear()
        for occ in self._occ:
            occ[:] = 0
        self._net_mode_refs.clear()
        self._overused.clear()
        for refs in self._bit_refs:
            refs.clear()
        for route in routes.values():
            self._add_route(route)

    # -- array-level pricing -------------------------------------------------

    def _heuristic(
        self, target: int, astar_fac: float
    ) -> List[float]:
        """``astar_fac * manhattan(node, target)`` for every node —
        exactly the scalar per-push expression, batched and cached
        (LRU) — or the lookahead's tighter per-target vector, which
        carries its own cache."""
        if self.lookahead is not None:
            return self.lookahead.cost_list_scaled(target, astar_fac)
        cache = self._h_cache
        key = (target, astar_fac)
        h = cache.get(key)
        if h is None:
            # Evict least-recently-used entries (dict order = use
            # order: hits below re-insert) instead of clearing the
            # lot — timed routing keys one entry per connection and
            # would thrash the whole cache at the bound.
            n = len(self._np_x)
            while cache and (len(cache) + 1) * n > _H_CACHE_MAX_FLOATS:
                del cache[next(iter(cache))]
            h = (
                astar_fac
                * (
                    np.abs(self._np_x - self.rrg.node_x[target])
                    + np.abs(self._np_y - self.rrg.node_y[target])
                )
            ).tolist()
            cache[key] = h
        else:
            del cache[key]
            cache[key] = h
        return h

    def _price_arrays(
        self, request: RouteRequest, pres_fac: float
    ):
        """Whole-graph numpy price state of one connection search.

        Returns ``(pn_np, pnA_np, static_set)`` where
        ``pn = cost + 0.01 * noise`` (the additive edge term of the
        untimed loop), ``pnA`` its bit-affinity-discounted twin
        *already gated on zero overuse* (``pnA == pn`` wherever the
        node is overused, exactly like the scalar guard; None when no
        discount can apply), and ``static_set`` the switch bits
        currently on in every mode outside the activation set.  Every
        expression mirrors the scalar reference's grouping.  (The
        batched core's isolated per-net tasks price through their own
        round-shared twin of this method — see
        ``BatchedPathFinderRouter._price_entry_isolated``.)
        """
        net = request.net
        modes = request.modes
        salt = zlib.crc32(net.encode())
        if self._noise_salt != salt:
            # Same ints, same single division, same 0.01 scale as the
            # scalar `0.01 * (((salt ^ node*MUL) & 0xFFFF) / 0xFFFF)`.
            self._noise01 = 0.01 * (
                ((self._noise_mul ^ salt) & 0xFFFF) / 0xFFFF
            )
            self._noise_salt = salt
        noise01 = self._noise01

        cap = self._np_cap
        overuse: Optional[np.ndarray] = None
        for mode in modes:
            # occ_after = occ + (0 if net already there else 1);
            # overuse accumulates max(occ_after - cap, 0) per mode.
            occ_after = self._occ[mode] + 1
            refs = self._net_mode_refs.get((net, mode))
            if refs:
                occ_after[
                    np.fromiter(refs.keys(), np.int64, len(refs))
                ] -= 1
            occ_after -= cap
            np.maximum(occ_after, 0, out=occ_after)
            overuse = (
                occ_after if overuse is None else overuse + occ_after
            )
        cost = (self._np_base + self._hist) * (
            1.0 + pres_fac * overuse
        )
        if self.net_affinity < 1.0:
            other: set = set()
            for mode in range(self.n_modes):
                if mode not in modes:
                    refs = self._net_mode_refs.get((net, mode))
                    if refs:
                        other.update(refs.keys())
            if other:
                idx = np.fromiter(other, np.int64, len(other))
                sel = idx[
                    self._wire_mask[idx] & (overuse[idx] == 0)
                ]
                cost[sel] *= self.net_affinity

        pn_np = cost + noise01
        pnA_np = None
        static_set: set = set()
        if self.bit_affinity < 1.0 and len(modes) < self.n_modes:
            static = None
            for mode in range(self.n_modes):
                if mode in modes:
                    continue
                bits = self._bit_refs[mode].keys()
                static = (
                    set(bits) if static is None
                    else static & set(bits)
                )
                if not static:
                    break
            static_set = static or set()
            # No discountable bit means no edge can diverge from the
            # plain price — skip the discounted twin entirely.
            if static_set:
                pnA_np = np.where(
                    overuse == 0,
                    cost * self.bit_affinity + noise01,
                    pn_np,
                )
        return pn_np, pnA_np, static_set

    def _make_price_entry(
        self, request: RouteRequest, pres_fac: float
    ) -> Tuple:
        """Build one cached price entry: the heap kernels read plain
        Python lists (``tolist()`` keeps scalar access cheap).  The
        batched core overrides this to keep the numpy arrays."""
        pn_np, pnA_np, static_set = self._price_arrays(
            request, pres_fac
        )
        use_bit = pnA_np is not None
        return (
            pn_np.tolist(),
            pnA_np.tolist() if use_bit else None,
            static_set,
            use_bit,
        )

    def _price_vectors(
        self, request: RouteRequest, pres_fac: float
    ) -> Tuple:
        """Cached price state: ``(pn, pnA, static_set, use_bit)`` per
        activation set of the current (net, pres_fac) — see the
        module docstring for the reuse-safety argument behind
        ``_invalidate_prices``."""
        net = request.net
        modes = request.modes
        if (
            net != self._price_net
            or pres_fac != self._price_pres
        ):
            self._price_entries.clear()
            self._price_net = net
            self._price_pres = pres_fac
        entry = self._price_entries.get(modes)
        if entry is None:
            entry = self._make_price_entry(request, pres_fac)
            self._price_entries[modes] = entry
        return entry

    # -- search --------------------------------------------------------------
    #
    # The relaxation loops live in repro.route.searchkernel (shared
    # with the scalar reference and the batched core).  ``dist`` is a
    # fresh per-search list using value sentinels instead of epoch
    # stamps: +inf means "not seen this search" (any first relaxation
    # improves, exactly like the scalar's epoch check) and -inf,
    # written when a node is popped, means "settled" (no relaxation
    # can improve, exactly like the scalar's visited check — a node's
    # first pop always carries its best tentative distance, because
    # entries of one node share its heuristic and thus sort by
    # distance).  Without a live bit discount the kernels get
    # ``pnA=pn`` and an empty static set, which evaluates the exact
    # float expressions of the historical no-bit loops.

    def _route_connection(
        self, request: RouteRequest, pres_fac: float
    ) -> ConnectionRoute:
        """Vectorized twin of the scalar multi-source A* search."""
        timing = self.timing
        if timing is not None:
            crit = timing.criticality.get(request.conn_id, 0.0)
            if crit > 0.0:
                return self._route_connection_timed(
                    request, pres_fac, crit
                )
        pn, pnA, static_set, use_bit = self._price_vectors(
            request, pres_fac
        )
        h = self._heuristic(request.sink, self.astar_fac)
        starts = self._seed(request)
        dist = [_INF] * self._n_nodes
        found = heap_search_untimed(
            starts,
            request.sink,
            h,
            pn,
            pnA if use_bit else pn,
            static_set if use_bit else EMPTY_STATIC,
            self._nbr_main,
            self._nbr_sink,
            dist,
            self._parent_node,
            self._parent_bit,
            stats=self.stats,
        )
        if not found:
            raise self._no_path(request)
        return self._backtrack(request, starts)

    def _route_connection_timed(
        self, request: RouteRequest, pres_fac: float, crit: float
    ) -> ConnectionRoute:
        """Vectorized timed search.

        Criticality differs per connection, so unlike the untimed
        loop nothing criticality-weighted is worth precomputing: the
        kernel blends the *cached* congestion vectors with the static
        per-node delay lists edge by edge —
        ``g + (inv_crit * congestion + crit * delay)`` — exactly the
        scalar grouping, with the pricing work amortized away.  With
        a lookahead the heuristic blends the unscaled cost/delay
        lower-bound vectors per push instead (cached per target, not
        per criticality)."""
        pn, pnA, static_set, use_bit = self._price_vectors(
            request, pres_fac
        )
        inv_crit = 1.0 - crit
        astar_fac = (
            inv_crit * self.astar_fac
            + crit * self.timing.model.wire_delay
        )
        lookahead = self.lookahead
        if lookahead is not None:
            lkc = lookahead.cost_list(request.sink)
            lkd = lookahead.delay_list(request.sink)
            lk_a = inv_crit * self.astar_fac
            lk_b = crit
        else:
            lkc = lkd = None
            lk_a = lk_b = 0.0
        rrg = self.rrg
        starts = self._seed(request)
        dist = [_INF] * self._n_nodes
        found = heap_search_timed(
            starts,
            request.sink,
            rrg.node_x,
            rrg.node_y,
            astar_fac,
            inv_crit,
            crit,
            self._node_delay,
            self._node_delay_switch,
            pn,
            pnA if use_bit else pn,
            static_set if use_bit else EMPTY_STATIC,
            self._nbr_main,
            self._nbr_sink,
            dist,
            self._parent_node,
            self._parent_bit,
            lkc=lkc,
            lkd=lkd,
            lk_a=lk_a,
            lk_b=lk_b,
            stats=self.stats,
        )
        if not found:
            raise self._no_path(request)
        return self._backtrack(request, starts)

    def _seed(self, request: RouteRequest) -> set:
        """Start set (source + the net's trunk) of one search."""
        starts = {request.source}
        starts.update(self._trunk_nodes(request))
        return starts

    def _backtrack(
        self, request: RouteRequest, starts: set
    ) -> ConnectionRoute:
        parent_node = self._parent_node
        parent_bit = self._parent_bit
        edges: List[Tuple[int, int, int]] = []
        node = request.sink
        while node not in starts:
            edges.append((parent_node[node], node, parent_bit[node]))
            node = parent_node[node]
        edges.reverse()
        return ConnectionRoute(request, edges)

    def _no_path(self, request: RouteRequest) -> RoutingError:
        rrg = self.rrg
        return RoutingError(
            f"no path from {rrg.describe(request.source)} to "
            f"{rrg.describe(request.sink)}"
        )
