"""Batched-wavefront PathFinder core (opt-in, QoR-gated).

:class:`BatchedPathFinderRouter` replaces the binary heap at the
center of the search with the bucket (delta-stepping) kernels of
:mod:`repro.route.searchkernel` and the net-at-a-time negotiation
loop with a parallel-net pass.  It reuses the vectorized core's
whole-graph pricing (:meth:`_price_arrays`) but keeps the price
vectors as numpy arrays: each drained bucket prices **all** its
outgoing edges in one CSR expansion instead of one list read per
edge.

**What changes vs. the scalar/vectorized cores.**  Entries within a
bucket settle together without intra-bucket re-relaxation, so a
settled label may exceed the true optimum by up to one bucket width —
routes can differ from the reference cores.  The batched core is
therefore *not* bit-identical to them; it ships behind
``FlowOptions(batched_router=True)`` and is gated by the QoR campaign
tolerances (see ``tests/test_router_batched.py``).

**What does NOT change: determinism.**  Everything is a pure function
of the request stream:

* bucket drains are ordered (lowest bucket first) and the
  per-destination relaxation winner is canonical (lowest ``ng``, then
  source, then bit, via a stable lexsort);
* the parallel negotiation phase is a *Jacobi* step — every dirty net
  is ripped up first, then each net routes in **isolation** against
  the frozen background congestion (task-local occupancy overlays, a
  task-local price cache, task-local scratch; shared state is
  read-only), so per-net results cannot depend on scheduling;
* routes commit in canonical net order, and the conflict-resolution
  pass replays colliding nets sequentially in that same order.

Results are consequently bit-identical across ``route_workers``
counts (1 == N threads) and across warm/cold stage caches — asserted
by the equivalence suite.

The parallel fan-out goes through :class:`repro.exec.scheduler`'s
thread mode (the tasks close over live router state and are not
picklable).  On a single-core box threads buy no wall clock — the
speedup of this core comes from the bucket kernels — but the
negotiation pass is structured so multi-core machines can fan it out
without changing a single result.
"""

from __future__ import annotations

import gc
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.rrg import SINK
from repro.route.router import (
    ConnectionRoute,
    RouteRequest,
    RoutingError,
    RoutingResult,
)
from repro.route.searchkernel import (
    RouterStats,
    bucket_search_timed,
    bucket_search_untimed,
)
from repro.route.vectorized import (
    _H_CACHE_MAX_FLOATS,
    _INF,
    VectorizedPathFinderRouter,
)

#: Floor for the bucket width: the price vectors are strictly
#: positive on non-sink nodes (unit base cost times the affinity
#: floor), so this only guards degenerate graphs.
_MIN_DELTA = 1e-9


class BatchedPathFinderRouter(VectorizedPathFinderRouter):
    """Bucket-queue search + parallel-net negotiation.

    Selected by ``PathFinderRouter(..., batched=True)`` (unless
    ``REPRO_SCALAR_ROUTER`` forces the scalar reference — the escape
    hatch trumps the flag).  ``route_workers`` sizes the thread
    fan-out of the negotiation pass; results are identical at any
    value.  ``stats`` (a :class:`RouterStats`) accumulates profiling
    counters across ``route()`` calls; one is created if not given.
    """

    #: Bucket-width multiplier over the minimum node price.  1.0 is
    #: classic delta-stepping; widening the bucket drains bigger
    #: frontiers per numpy pass (fewer, fatter drains) at the price
    #: of a proportionally looser settled-label bound.  The default
    #: is tuned on the bench workload against the campaign QoR gate.
    delta_mult: float = 1.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.stats is None:
            self.stats = RouterStats()
        n = self._n_nodes
        # numpy CSR twins (the inherited views are Python lists).
        self._np_row_ptr = np.asarray(self._row_ptr, dtype=np.int64)
        self._np_edge_dst = np.asarray(self._edge_dst, dtype=np.int64)
        self._np_edge_bit = np.asarray(self._edge_bit, dtype=np.int64)
        self._nonsink_mask = (
            np.asarray(self.rrg.node_kind, dtype=np.int64) != SINK
        )
        # Bit-id bound for the static-bit lookup vectors (+1 sentinel
        # slot kept False so ``lut[-1]`` — edges without a bit — never
        # discounts).
        self._n_bits = int(
            self._np_edge_bit.max() + 1
        ) if self._np_edge_bit.size else 0
        # Padded adjacency: ``_adj_e[node]`` is the node's outgoing
        # edge ids right-padded with the sentinel id ``n_edges``, so
        # frontier expansion is a single 2-D gather.  The padded
        # per-edge companions (``n_edges + 1`` long) give the pad
        # slot a harmless destination — its price is +inf, so it
        # never survives relaxation.
        n_edges = self._np_edge_dst.shape[0]
        deg = self._np_row_ptr[1:] - self._np_row_ptr[:-1]
        max_deg = int(deg.max()) if deg.size else 1
        adj_e = np.full((n, max(max_deg, 1)), n_edges, np.int64)
        rp0 = self._np_row_ptr[:-1]
        for j in range(max_deg):
            rows = deg > j
            adj_e[rows, j] = rp0[rows] + j
        self._adj_e = adj_e
        self._pdst = np.concatenate(
            [self._np_edge_dst, np.zeros(1, np.int64)]
        )
        self._pedge_src = np.concatenate(
            [
                np.repeat(np.arange(n, dtype=np.int64), deg),
                np.zeros(1, np.int64),
            ]
        )
        self._pedge_bit = np.concatenate(
            [self._np_edge_bit, np.full(1, -1, np.int64)]
        )
        self._edge_sink = ~self._nonsink_mask[self._np_edge_dst]
        # Shared per-round price state of the parallel negotiation:
        # during one Jacobi round the background congestion is frozen
        # and every ripped net prices against it, so the expensive
        # occupancy/overuse part of the price vector is identical for
        # all nets with the same activation set.  Keyed by activation
        # set, cleared at the start of every round.
        self._round_cost: Dict = {}
        if self._node_delay is not None:
            self._np_nd = np.asarray(
                self._node_delay, dtype=np.float64
            )
            self._np_nds = np.asarray(
                self._node_delay_switch, dtype=np.float64
            )
            nonsink_nd = self._np_nd[self._nonsink_mask]
            self._min_edge_delay = (
                float(nonsink_nd.min()) if nonsink_nd.size else 0.0
            )
            # Edge-indexed delay (switch-inclusive on bit-carrying
            # edges); delays never change, so one vector serves every
            # timed search of the router's lifetime.
            self._pde = np.concatenate(
                [
                    np.where(
                        self._np_edge_bit >= 0,
                        self._np_nds[self._np_edge_dst],
                        self._np_nd[self._np_edge_dst],
                    ),
                    np.full(1, _INF, np.float64),
                ]
            )
        # Per-search scratch of the live (non-parallel) searches
        # (``_bfq`` is the dense priority queue of the bucket kernel).
        self._bdist = np.empty(n, dtype=np.float64)
        self._bfq = np.empty(n, dtype=np.float64)
        self._bparent_node = np.empty(n, dtype=np.int64)
        self._bparent_bit = np.empty(n, dtype=np.int64)
        # Manhattan vectors per target: unscaled (timed searches
        # scale by the per-connection blended A* weight) and
        # astar_fac-scaled (untimed).  Concurrent negotiation tasks
        # share these dicts — benign under the GIL: values are
        # immutable once assigned and a lost race only recomputes.
        self._man_cache: Dict[int, np.ndarray] = {}
        self._bh_cache: Dict[int, np.ndarray] = {}

    # -- heuristics ----------------------------------------------------------
    #
    # Both per-target caches evict least-recently-used entries at the
    # float budget (dict order = use order; a hit re-inserts).  The
    # pop-based refresh keeps concurrent negotiation tasks safe under
    # the GIL: pop-with-default cannot raise on a lost race, and the
    # eviction guard tolerates a neighbour emptying the dict.

    def _lru_evict(self, cache: Dict) -> None:
        while (
            cache
            and (len(cache) + 1) * self._n_nodes > _H_CACHE_MAX_FLOATS
        ):
            try:
                cache.pop(next(iter(cache)), None)
            except (StopIteration, RuntimeError):
                break

    def _man_np(self, target: int) -> np.ndarray:
        # Deliberately lock-free pop-then-reinsert LRU: single-word
        # dict ops are atomic under the GIL, values are immutable
        # once built, and a lost race only recomputes one array.
        cache = self._man_cache
        # repro: allow[RPR201] GIL-benign LRU pop; lost race recomputes
        man = cache.pop(target, None)
        if man is None:
            self._lru_evict(cache)
            man = (
                np.abs(self._np_x - self.rrg.node_x[target])
                + np.abs(self._np_y - self.rrg.node_y[target])
            ).astype(np.float64)
        # repro: allow[RPR201] GIL-benign reinsert of immutable value
        cache[target] = man
        return man

    def _bh_np(self, target: int) -> np.ndarray:
        # Same lock-free LRU discipline as _man_np.
        cache = self._bh_cache
        # repro: allow[RPR201] GIL-benign LRU pop; lost race recomputes
        h = cache.pop(target, None)
        if h is None:
            self._lru_evict(cache)
            if self.lookahead is not None:
                # The lookahead's cost table replaces Manhattan under
                # the same astar_fac scaling (admissible either way;
                # the bucket width adapts in _delta_eff).
                h = self.astar_fac * self.lookahead.cost_array(target)
            else:
                h = self.astar_fac * self._man_np(target)
        # repro: allow[RPR201] GIL-benign reinsert of immutable value
        cache[target] = h
        return h

    def _delta_eff(self) -> float:
        """Bucket-width multiplier, adapted to the heuristic.

        The lookahead compresses the f-range of a search (h is close
        to the true remaining cost, so queued f values cluster near
        the final path cost); at a fixed delta the frontier then
        spans more of the remaining slack and the settled-label error
        grows relative to the search depth.  Halving the width keeps
        the quantization commensurate with the sharper heuristic.
        """
        if self.lookahead is not None:
            return self.delta_mult * 0.5
        return self.delta_mult

    # -- pricing -------------------------------------------------------------

    def _make_price_entry(
        self, request: RouteRequest, pres_fac: float
    ) -> Tuple:
        """Numpy-shaped price entry: the bucket kernels gather from
        arrays, and the bucket width rides along — the minimum
        additive price over non-sink nodes (the quantization
        contract: every hop advances ``f`` by at least one bucket)."""
        pn_np, pnA_np, static_set = self._price_arrays(
            request, pres_fac
        )
        return self._finish_price_entry(pn_np, pnA_np, static_set)

    def _finish_price_entry(
        self,
        pn_np: np.ndarray,
        pnA_np: Optional[np.ndarray],
        static_set: set,
    ) -> Tuple:
        """Lower node-level price vectors to the kernels' edge-level
        form: ``pe[edge]`` is the full additive cost of taking that
        edge, with the bit-affinity discount already resolved per
        edge and sink edges (plus the pad slot) priced +inf so they
        drop out of relaxation with no per-drain masking.  Built once
        per entry, amortized over every drain of every search that
        prices under it."""
        use_bit = pnA_np is not None
        static_lut = None
        n_edges = self._np_edge_dst.shape[0]
        pe = np.empty(n_edges + 1, np.float64)
        if use_bit:
            static_lut = np.zeros(self._n_bits + 1, np.bool_)
            static_lut[
                np.fromiter(static_set, np.int64, len(static_set))
            ] = True
            pe[:n_edges] = np.where(
                static_lut[self._np_edge_bit],
                pnA_np[self._np_edge_dst],
                pn_np[self._np_edge_dst],
            )
        else:
            pe[:n_edges] = pn_np[self._np_edge_dst]
        pe[:n_edges][self._edge_sink] = _INF
        pe[n_edges] = _INF
        floor = pnA_np if use_bit else pn_np
        nonsink = floor[self._nonsink_mask]
        min_price = (
            float(nonsink.min()) if nonsink.size else _MIN_DELTA
        )
        return (
            pn_np,
            pnA_np,
            static_lut,
            pe,
            max(min_price, _MIN_DELTA),
        )

    def _round_entry(self, modes, pres_fac: float) -> Tuple:
        """Shared ``(cost, overuse)`` vectors of one Jacobi round.

        During a round the background congestion is frozen and every
        routing net has been ripped up, so for a given activation set
        the occupancy term is the same for all of them:
        ``occ_after = occ + 1`` everywhere — the net being priced is
        absent from the background, so there is nothing to cancel —
        and the cost expression keeps the reference grouping
        ``(base + hist) * (1 + pres_fac * overuse)``.  Concurrent
        tasks share this cache; benign under the GIL (values are
        immutable once computed, a lost race only recomputes).
        """
        entry = self._round_cost.get(modes)
        if entry is None:
            cap = self._np_cap
            overuse = None
            for mode in modes:
                occ_after = self._occ[mode] + 1
                occ_after -= cap
                np.maximum(occ_after, 0, out=occ_after)
                overuse = (
                    occ_after if overuse is None
                    else overuse + occ_after
                )
            cost = (self._np_base + self._hist) * (
                1.0 + pres_fac * overuse
            )
            entry = (cost, overuse)
            # repro: allow[RPR201] benign race documented above
            self._round_cost[modes] = entry
        return entry

    def _price_entry_isolated(
        self,
        request: RouteRequest,
        pres_fac: float,
        local_refs: Dict[int, Dict[int, int]],
        local_bits: Dict[int, Dict[int, int]],
        noise01: np.ndarray,
    ) -> Tuple:
        """Price entry of one isolated per-net task.

        Starts from the round-shared cost vector and applies the two
        per-net parts — the cross-mode net-affinity discount (sourced
        from the task-local route tree: the shared state has no trace
        of this net) and the per-net noise — with exactly the
        reference expressions.  The shared vectors are never written;
        the affinity discount copies on write.
        """
        modes = request.modes
        cost, overuse = self._round_entry(modes, pres_fac)
        if self.net_affinity < 1.0:
            other: set = set()
            for mode in range(self.n_modes):
                if mode not in modes:
                    refs = local_refs.get(mode)
                    if refs:
                        other.update(refs.keys())
            if other:
                idx = np.fromiter(other, np.int64, len(other))
                sel = idx[
                    self._wire_mask[idx] & (overuse[idx] == 0)
                ]
                if sel.size:
                    cost = cost.copy()
                    cost[sel] *= self.net_affinity
        pn_np = cost + noise01
        pnA_np = None
        static_set: set = set()
        if self.bit_affinity < 1.0 and len(modes) < self.n_modes:
            static = None
            for mode in range(self.n_modes):
                if mode in modes:
                    continue
                bits = set(self._bit_refs[mode])
                local = local_bits.get(mode)
                if local:
                    bits.update(local)
                static = bits if static is None else static & bits
                if not static:
                    break
            static_set = static or set()
            if static_set:
                pnA_np = np.where(
                    overuse == 0,
                    cost * self.bit_affinity + noise01,
                    pn_np,
                )
        return self._finish_price_entry(pn_np, pnA_np, static_set)

    # -- live searches (commit-phase replays, bit-sharing sweeps) ------------

    def _route_connection(
        self, request: RouteRequest, pres_fac: float
    ) -> ConnectionRoute:
        timing = self.timing
        if timing is not None:
            crit = timing.criticality.get(request.conn_id, 0.0)
            if crit > 0.0:
                return self._route_connection_timed(
                    request, pres_fac, crit
                )
        entry = self._price_vectors(request, pres_fac)
        starts = self._seed(request)
        dist = self._bdist
        dist.fill(_INF)
        fq = self._bfq
        fq.fill(_INF)
        found = self._bucket_untimed(
            starts, request, entry, dist, fq,
            self._bparent_node, self._bparent_bit,
        )
        if not found:
            raise self._no_path(request)
        return self._backtrack_np(
            request, starts, self._bparent_node, self._bparent_bit
        )

    def _route_connection_timed(
        self, request: RouteRequest, pres_fac: float, crit: float
    ) -> ConnectionRoute:
        entry = self._price_vectors(request, pres_fac)
        starts = self._seed(request)
        dist = self._bdist
        dist.fill(_INF)
        fq = self._bfq
        fq.fill(_INF)
        found = self._bucket_timed(
            starts, request, entry, crit, dist, fq,
            self._bparent_node, self._bparent_bit,
        )
        if not found:
            raise self._no_path(request)
        return self._backtrack_np(
            request, starts, self._bparent_node, self._bparent_bit
        )

    def _bucket_untimed(
        self, starts, request, entry, dist, fq, parent_node,
        parent_bit, stats: Optional[RouterStats] = None,
    ) -> bool:
        pn, pnA, static_lut, pe, min_price = entry
        return bucket_search_untimed(
            starts,
            request.sink,
            self._bh_np(request.sink),
            pn,
            pnA,
            static_lut,
            pe,
            self._adj_e,
            self._pdst,
            self._pedge_src,
            self._pedge_bit,
            dist,
            fq,
            parent_node,
            parent_bit,
            min_price * self._delta_eff(),
            stats if stats is not None else self.stats,
        )

    def _bucket_timed(
        self, starts, request, entry, crit, dist, fq, parent_node,
        parent_bit, stats: Optional[RouterStats] = None,
    ) -> bool:
        pn, pnA, static_lut, pe, min_price = entry
        # Clamp keeps ``inv_crit * inf`` (sink/pad edge prices) a
        # well-defined +inf even at criticality 1.0; the price shift
        # is far below the bucket quantization.
        inv_crit = max(1.0 - crit, 1e-12)
        astar_fac = (
            inv_crit * self.astar_fac
            + crit * self.timing.model.wire_delay
        )
        # Blend of the two per-hop floors, mirroring the blended A*
        # weight: congestion advances by >= min_price per hop and
        # delay by >= the minimum node delay.
        delta = max(
            inv_crit * min_price + crit * self._min_edge_delay,
            _MIN_DELTA,
        )
        lookahead = self.lookahead
        if lookahead is not None:
            # Criticality blend of the unscaled lookahead vectors —
            # the numpy twin of the heap kernels' per-push blend.
            h = (inv_crit * self.astar_fac) * lookahead.cost_array(
                request.sink
            ) + crit * lookahead.delay_array(request.sink)
        else:
            h = astar_fac * self._man_np(request.sink)
        return bucket_search_timed(
            starts,
            request.sink,
            h,
            inv_crit,
            crit,
            self._np_nd,
            self._np_nds,
            pn,
            pnA,
            static_lut,
            pe,
            self._pde,
            self._adj_e,
            self._pdst,
            self._pedge_src,
            self._pedge_bit,
            dist,
            fq,
            parent_node,
            parent_bit,
            delta * self.delta_mult,
            stats if stats is not None else self.stats,
        )

    def _backtrack_np(
        self, request, starts, parent_node, parent_bit
    ) -> ConnectionRoute:
        """Backtrack over the numpy parent arrays, materializing
        plain ints (downstream code pickles, hashes and serializes
        the edge tuples)."""
        edges: List[Tuple[int, int, int]] = []
        node = request.sink
        while node not in starts:
            prev = int(parent_node[node])
            edges.append((prev, int(node), int(parent_bit[node])))
            node = prev
        edges.reverse()
        return ConnectionRoute(request, edges)

    # -- parallel-net negotiation --------------------------------------------

    def route(
        self, requests: Sequence[RouteRequest]
    ) -> RoutingResult:
        """Negotiate all requests with a parallel-net (Jacobi)
        iteration structure.

        Per iteration: rip up every dirty net first, route each in
        isolation against the frozen background (fanned over
        ``route_workers`` threads; pure tasks, so any worker count
        produces the same routes), commit in canonical net order,
        then replay nets that still collide — sequentially, in the
        same canonical order.  History/present-cost updates and the
        dirty-net selection mirror the sequential cores.

        ``partial_ripup`` is a no-op here: the Jacobi round prices
        every routing net against a background it is entirely absent
        from (``_round_entry``'s ``occ_after = occ + 1`` has nothing
        to cancel), so kept subtrees would be double-counted.  The
        batched core always rips whole nets.
        """
        for request in requests:
            if max(request.modes, default=0) >= self.n_modes:
                raise ValueError(
                    "request mode exceeds router's n_modes"
                )
        by_net, net_order = self._order_nets(requests)

        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._negotiate(by_net, net_order)
        finally:
            if was_enabled:
                gc.enable()

    def _negotiate(
        self,
        by_net: Dict[str, List[RouteRequest]],
        net_order: List[str],
    ) -> RoutingResult:
        routes: Dict[int, ConnectionRoute] = {}
        pres_fac = self.pres_fac_first
        iteration = 0
        to_route: List[str] = list(net_order)
        stats = self.stats
        while iteration < self.max_iterations:
            iteration += 1
            stats.parallel_rounds += 1
            # Jacobi rip-up: every net of this round leaves the
            # congestion state *before* any of them reroutes, so the
            # background each isolated task prices against is frozen
            # and identical regardless of scheduling.
            for net in to_route:
                for request in by_net[net]:
                    old = routes.pop(request.conn_id, None)
                    if old is not None:
                        self._remove_route(old)
            # The frozen background also means the overuse/cost part
            # of the price vector is shared by every net of the round
            # (see _round_entry); drop the previous round's vectors.
            self._round_cost.clear()
            if iteration == 1:
                # Gauss-Seidel warm start: the first round every net
                # routes from scratch, so a Jacobi pass would have
                # them all pile onto the same cheap wires and collide
                # almost everywhere — each collider would then need a
                # sequential replay anyway, doubling the round.
                # Routing the first round live, in canonical order,
                # is the same work the sequential cores do and leaves
                # only real congestion for the parallel rounds.
                for net in to_route:
                    for request in by_net[net]:
                        route = self._route_connection(
                            request, pres_fac
                        )
                        self._add_route(route)
                        routes[request.conn_id] = route
            else:
                for net, net_routes, task_stats in self._route_nets(
                    to_route, by_net, pres_fac
                ):
                    stats.merge(task_stats)
                    for route in net_routes:
                        self._add_route(route)
                        routes[route.request.conn_id] = route
                # Deterministic conflict resolution: replay nets that
                # still cross overused nodes one by one, in canonical
                # order, against the *live* state (each replay sees
                # the previous replays' routes).  This Gauss-Seidel
                # repair is what lets the Jacobi rounds converge: two
                # nets that priced the same frozen background pick
                # the same cheap wires forever (history raises both
                # alternatives equally), and only a pass in which one
                # net sees the other's route breaks the tie.  Dirty
                # sets shrink fast after the warm start, so the
                # replay list stays short.
                congested_set = set(self._congested_nodes())
                if congested_set:
                    colliders = [
                        net
                        for net in to_route
                        if any(
                            congested_set.intersection(
                                routes[request.conn_id].nodes()
                            )
                            for request in by_net[net]
                        )
                    ]
                    for net in colliders:
                        congested_set = set(self._congested_nodes())
                        if not congested_set:
                            break
                        if not any(
                            congested_set.intersection(
                                routes[request.conn_id].nodes()
                            )
                            for request in by_net[net]
                        ):
                            continue
                        stats.conflict_replays += 1
                        for request in by_net[net]:
                            self._remove_route(
                                routes.pop(request.conn_id)
                            )
                        for request in by_net[net]:
                            route = self._route_connection(
                                request, pres_fac
                            )
                            self._add_route(route)
                            routes[request.conn_id] = route
            congested = self._congested_nodes()
            if not congested:
                routes = self._improve_bit_sharing(
                    routes, by_net, net_order, pres_fac
                )
                return RoutingResult(
                    self.rrg, routes, self.n_modes, iteration
                )
            for node, overuse in congested.items():
                self._hist[node] += self.acc_fac * overuse
            self._history_updated()
            pres_fac *= self.pres_fac_mult
            congested_set = set(congested)
            dirty = set()
            for route in routes.values():
                if congested_set.intersection(route.nodes()):
                    dirty.add(route.request.net)
            to_route = [net for net in net_order if net in dirty]
            if len(to_route) > 1:
                shift = iteration % len(to_route)
                to_route = to_route[shift:] + to_route[:shift]
        raise RoutingError(
            f"unroutable after {self.max_iterations} iterations "
            f"({len(self._congested_nodes())} congested nodes)"
        )

    def _route_nets(
        self,
        to_route: List[str],
        by_net: Dict[str, List[RouteRequest]],
        pres_fac: float,
    ) -> List[Tuple[str, List[ConnectionRoute], RouterStats]]:
        """Route each net of the round in isolation; fan over the
        scheduler's thread mode when more than one worker (and net)
        is available.  Results come back in submission order either
        way."""
        if self.route_workers <= 1 or len(to_route) <= 1:
            return [
                (net, *self._route_net_isolated(by_net[net], pres_fac))
                for net in to_route
            ]
        from repro.exec.scheduler import Scheduler, Task

        scheduler = Scheduler(
            workers=self.route_workers, use_threads=True
        )
        results = scheduler.run(
            [
                Task(
                    fn=self._route_net_isolated,
                    args=(by_net[net], pres_fac),
                    name=net,
                )
                for net in to_route
            ]
        )
        return [
            (net, net_routes, task_stats)
            for net, (net_routes, task_stats) in zip(
                to_route, results
            )
        ]

    def _route_net_isolated(
        self,
        net_requests: List[RouteRequest],
        pres_fac: float,
    ) -> Tuple[List[ConnectionRoute], RouterStats]:
        """Route one net against the frozen background — pure.

        All shared state (occupancy arrays, history, other nets'
        references, bit references) is read-only here; the net's own
        growing route tree lives in task-local overlays threaded into
        :meth:`_price_arrays`, the price cache is task-local (same
        subset-invalidation rule as the live cache), and search
        scratch is task-local.  Purity is what makes the Jacobi round
        independent of worker count.
        """
        net = net_requests[0].net
        n = self._n_nodes
        dist = np.empty(n, dtype=np.float64)
        fq = np.empty(n, dtype=np.float64)
        parent_node = np.empty(n, dtype=np.int64)
        parent_bit = np.empty(n, dtype=np.int64)
        local_refs: Dict[int, Dict[int, int]] = {}
        local_bits: Dict[int, Dict[int, int]] = {}
        entries: Dict = {}
        stats = RouterStats()
        noise01 = 0.01 * (
            (
                (self._noise_mul ^ zlib.crc32(net.encode()))
                & 0xFFFF
            )
            / 0xFFFF
        )
        timing = self.timing

        def trunk(request) -> set:
            modes = sorted(request.modes)
            refs0 = local_refs.get(modes[0])
            if not refs0:
                return set()
            nodes = set(refs0)
            for mode in modes[1:]:
                refs = local_refs.get(mode)
                if not refs:
                    return set()
                nodes &= refs.keys()
            return nodes

        out: List[ConnectionRoute] = []
        for request in net_requests:
            modes = request.modes
            entry = entries.get(modes)
            if entry is None:
                entry = self._price_entry_isolated(
                    request, pres_fac, local_refs, local_bits,
                    noise01,
                )
                entries[modes] = entry
            starts = {request.source} | trunk(request)
            dist.fill(_INF)
            fq.fill(_INF)
            crit = 0.0
            if timing is not None:
                crit = timing.criticality.get(request.conn_id, 0.0)
            if crit > 0.0:
                found = self._bucket_timed(
                    starts, request, entry, crit, dist, fq,
                    parent_node, parent_bit, stats,
                )
            else:
                found = self._bucket_untimed(
                    starts, request, entry, dist, fq,
                    parent_node, parent_bit, stats,
                )
            if not found:
                raise self._no_path(request)
            route = self._backtrack_np(
                request, starts, parent_node, parent_bit
            )
            out.append(route)
            # Task-local bookkeeping + the same subset-safe price
            # invalidation as the live cache.
            for mode in modes:
                refs = local_refs.setdefault(mode, {})
                for node in route.nodes():
                    refs[node] = refs.get(node, 0) + 1
                bits = local_bits.setdefault(mode, {})
                for bit in route.bits():
                    bits[bit] = bits.get(bit, 0) + 1
            for key in [k for k in entries if not modes <= k]:
                del entries[key]
        return out, stats
