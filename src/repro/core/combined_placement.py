"""Combined placement of all mode circuits (paper Sections III-A/B).

The conventional annealing placer is extended so several LUT circuits
are placed *simultaneously* on the same fabric:

* LUTs of different modes may occupy the same physical logic block
  (they will share a Tunable LUT after merging);
* a swap selects two physical blocks *and a mode*: only the chosen
  mode's occupants are interchanged;
* IO pads are shared across modes by signal name (the chip pins of a
  multi-mode system are fixed), so pad moves relocate the pad in every
  mode at once.

Two cost functions are available, matching the paper's two options:

* ``EDGE_MATCHING`` — minimise the number of distinct tunable
  connections, i.e. maximise the connections of different modes that
  end up with the same physical source and sink (Rullmann & Merker's
  criterion).  Topology-only: placement quality is ignored.
* ``WIRE_LENGTH`` — minimise the summed per-mode bounding-box wire
  length, the same estimator TPlace uses (the paper's novel approach).

:class:`TunablePlacementProblem` implements TPlace: annealing
refinement of an already-merged Tunable circuit, moving whole Tunable
cells (topology fixed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.architecture import FpgaArchitecture, Site
from repro.core.merge import MergeStrategy, merge_from_placement
from repro.core.tunable import TunableCircuit
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule, AnnealingStats, anneal
from repro.place.cost import net_bounding_box_cost, q_factor
from repro.place.placer import (
    Net,
    PlacementTimingMixin,
    circuit_nets,
    pad_cell,
)
from repro.utils.rng import make_rng

# Cell keys: ("b", mode, block_name) for per-mode blocks,
#            ("p", pad_cell_name) for shared IO pads.
CellKey = Tuple


@dataclass
class CombinedPlacementResult:
    """Outcome of a combined placement run."""

    arch: FpgaArchitecture
    block_sites: Dict[Tuple[int, str], Site]
    pad_sites: Dict[str, Site]
    cost: float
    wirelength: float
    n_tunable_connections: int
    stats: Optional[AnnealingStats] = None


class CombinedPlacementProblem(PlacementTimingMixin):
    """Annealing problem placing all modes at once.

    *timing* (a :class:`~repro.timing.criticality.CriticalityConfig`)
    adds the criticality-weighted connection-delay term to the
    wire-length cost — one STA per mode, refreshed every temperature.
    It requires the ``WIRE_LENGTH`` strategy: edge matching is the
    paper's topology-only criterion (placement geometry is
    deliberately ignored), so a geometric timing term has no place in
    it; timing pressure reaches edge-matched circuits through the
    TPlace refinement instead.
    """

    def __init__(
        self,
        arch: FpgaArchitecture,
        mode_circuits: Sequence[LutCircuit],
        rng,
        strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
        timing=None,
    ) -> None:
        if strategy == MergeStrategy.BY_INDEX:
            raise ValueError(
                "BY_INDEX is not a combined-placement strategy"
            )
        if timing is not None and strategy != MergeStrategy.WIRE_LENGTH:
            raise ValueError(
                "timing-driven combined placement requires the "
                "wire-length strategy"
            )
        self.arch = arch
        self.circuits = list(mode_circuits)
        self.n_modes = len(self.circuits)
        self.strategy = strategy
        self._mode_inputs = [
            set(circuit.inputs) for circuit in self.circuits
        ]

        # -- cells ---------------------------------------------------------
        self.block_keys: List[CellKey] = []
        for mode, circuit in enumerate(self.circuits):
            for block in circuit.blocks:
                self.block_keys.append(("b", mode, block))
        pad_modes: Dict[str, Set[int]] = {}
        for mode, circuit in enumerate(self.circuits):
            for signal in list(circuit.inputs) + list(circuit.outputs):
                pad_modes.setdefault(pad_cell(signal), set()).add(mode)
        self.pad_keys: List[CellKey] = [
            ("p", cell) for cell in sorted(pad_modes)
        ]
        self.pad_modes = pad_modes

        clb_sites = arch.clb_sites()
        pad_sites = arch.pad_sites()
        max_blocks = max(
            len(c.blocks) for c in self.circuits
        )
        if max_blocks > len(clb_sites):
            raise ValueError("largest mode does not fit the grid")
        if len(self.pad_keys) > len(pad_sites):
            raise ValueError("IO pads do not fit the perimeter")

        # -- initial placement (random, legal) --------------------------------
        self.site_of: Dict[CellKey, Site] = {}
        self.block_at: Dict[Tuple[int, Site], CellKey] = {}
        for mode, circuit in enumerate(self.circuits):
            shuffled = list(clb_sites)
            rng.shuffle(shuffled)
            for block, site in zip(sorted(circuit.blocks), shuffled):
                key = ("b", mode, block)
                self.site_of[key] = site
                self.block_at[(mode, site)] = key
        shuffled_pads = list(pad_sites)
        rng.shuffle(shuffled_pads)
        self.pad_at: Dict[Site, CellKey] = {}
        for key, site in zip(self.pad_keys, shuffled_pads):
            self.site_of[key] = site
            self.pad_at[site] = key

        self.clb_sites = clb_sites
        self.all_pad_sites = pad_sites

        # -- nets (for wire-length cost and reporting) ------------------------
        self.mode_nets: List[Tuple[int, Net]] = []
        for mode, circuit in enumerate(self.circuits):
            for net in circuit_nets(circuit):
                self.mode_nets.append((mode, net))
        self.nets_of_cell: Dict[CellKey, List[int]] = {}
        for i, (mode, net) in enumerate(self.mode_nets):
            for cell in net.cells:
                key = self._cell_key(mode, cell)
                self.nets_of_cell.setdefault(key, []).append(i)
        # Cell keys per net, resolved once: the signal->key mapping is
        # placement-independent and _compute_net_cost is the move
        # loop's hottest callee.
        self._net_keys: List[List[CellKey]] = [
            [self._cell_key(mode, cell) for cell in net.cells]
            for mode, net in self.mode_nets
        ]
        self.net_cost: List[float] = [
            self._compute_net_cost(i) for i in range(len(self.mode_nets))
        ]

        # -- connections (for edge-matching cost) -----------------------------
        # Per mode, cell-level connections as (src key, sink key).
        self.mode_conns: List[Tuple[int, CellKey, CellKey]] = []
        for mode, circuit in enumerate(self.circuits):
            for block in circuit.blocks.values():
                sink = ("b", mode, block.name)
                for src in block.inputs:
                    self.mode_conns.append(
                        (mode, self._cell_key(mode, src), sink)
                    )
            for out in circuit.outputs:
                self.mode_conns.append(
                    (
                        mode,
                        self._cell_key(mode, out),
                        ("p", pad_cell(out)),
                    )
                )
        self.conns_of_cell: Dict[CellKey, List[int]] = {}
        for i, (_mode, src, sink) in enumerate(self.mode_conns):
            self.conns_of_cell.setdefault(src, []).append(i)
            if sink != src:
                self.conns_of_cell.setdefault(sink, []).append(i)
        # Multiset of site-level connection endpoints, plus a cache of
        # each connection's current key (commit needs the pre-move key
        # to decrement the right counter entry).
        self.conn_counter: Dict[Tuple, int] = {}
        self._conn_keys: Dict[int, Tuple] = {}
        for i in range(len(self.mode_conns)):
            key = self._conn_site_key(i)
            self.conn_counter[key] = self.conn_counter.get(key, 0) + 1
            self._conn_keys[i] = key

        # -- timing term (wire-length strategy only) --------------------------
        timing_cost = None
        if timing is not None:
            # Lazy import: repro.timing.criticality imports
            # repro.place.placer, which this module feeds.
            from repro.timing.criticality import PlacementTimingCost

            timing_cost = PlacementTimingCost(timing)
            for mode, circuit in enumerate(self.circuits):
                timing_cost.add_circuit(
                    circuit,
                    key_of=lambda cell, m=mode: self._cell_key(m, cell),
                )
        self._bind_timing(timing_cost)

    # -- helpers ---------------------------------------------------------

    def _cell_key(self, mode: int, cell: str) -> CellKey:
        if cell.startswith("pad:"):
            return ("p", cell)
        if cell in self._mode_inputs[mode]:
            return ("p", pad_cell(cell))
        return ("b", mode, cell)

    def _position(self, key: CellKey) -> Tuple[int, int]:
        return self.site_of[key].pos()

    def _compute_net_cost(self, index: int) -> float:
        # Single-pass bounding box straight over the sites — same
        # arithmetic as net_bounding_box_cost, minus the per-call
        # position-tuple list.
        keys = self._net_keys[index]
        n = len(keys)
        if n < 2:
            return 0.0
        site_of = self.site_of
        site = site_of[keys[0]]
        xmin = xmax = site.x
        ymin = ymax = site.y
        for key in keys:
            site = site_of[key]
            x = site.x
            y = site.y
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        return q_factor(n) * ((xmax - xmin) + (ymax - ymin))

    def _conn_site_key(self, index: int) -> Tuple:
        _mode, src, sink = self.mode_conns[index]
        s1 = self.site_of[src]
        s2 = self.site_of[sink]
        return (s1.kind, s1.x, s1.y, s1.slot,
                s2.kind, s2.x, s2.y, s2.slot)

    # -- annealing interface -------------------------------------------------

    def size(self) -> int:
        return len(self.block_keys) + len(self.pad_keys)

    def n_nets(self) -> int:
        return len(self.mode_nets)

    def max_rlim(self) -> int:
        return max(self.arch.nx, self.arch.ny) + 2

    def wirelength_cost(self) -> float:
        return sum(self.net_cost)

    def edge_matching_cost(self) -> float:
        """Number of distinct tunable connections after merging."""
        return float(len(self.conn_counter))

    def initial_cost(self) -> float:
        if self.strategy == MergeStrategy.WIRE_LENGTH:
            return self._combined_cost()
        return self.edge_matching_cost()

    # -- moves --------------------------------------------------------------

    def propose(self, rlim: float, rng):
        n_blocks = len(self.block_keys)
        total = n_blocks + len(self.pad_keys)
        if rng.randrange(total) < n_blocks:
            # Mode-level block swap (paper Section III-A): pick a
            # placed block (this selects the mode), then a second
            # physical block within range.
            key = self.block_keys[rng.randrange(n_blocks)]
            _tag, mode, _name = key
            src_site = self.site_of[key]
            for _ in range(8):
                dst_site = self.clb_sites[
                    rng.randrange(len(self.clb_sites))
                ]
                if dst_site == src_site:
                    continue
                if (
                    abs(dst_site.x - src_site.x) > rlim
                    or abs(dst_site.y - src_site.y) > rlim
                ):
                    continue
                return ("blk", key, src_site, dst_site)
            return None
        key = self.pad_keys[rng.randrange(len(self.pad_keys))]
        src_site = self.site_of[key]
        for _ in range(8):
            dst_site = self.all_pad_sites[
                rng.randrange(len(self.all_pad_sites))
            ]
            if dst_site == src_site:
                continue
            if (
                abs(dst_site.x - src_site.x) > rlim
                or abs(dst_site.y - src_site.y) > rlim
            ):
                continue
            return ("pad", key, src_site, dst_site)
        return None

    def _move_cells(self, move) -> List[Tuple[CellKey, Site, Site]]:
        """Cells a move displaces, with (from, to) sites."""
        kind, key, src_site, dst_site = move
        if kind == "blk":
            _tag, mode, _name = key
            other = self.block_at.get((mode, dst_site))
        else:
            other = self.pad_at.get(dst_site)
        displaced = [(key, src_site, dst_site)]
        if other is not None:
            displaced.append((other, dst_site, src_site))
        return displaced

    def delta_cost(self, move) -> float:
        displaced = self._move_cells(move)
        keys = [d[0] for d in displaced]
        self._pending = None
        if self.strategy == MergeStrategy.WIRE_LENGTH:
            affected: Set[int] = set()
            for key in keys:
                affected.update(self.nets_of_cell.get(key, ()))
            before = sum(self.net_cost[i] for i in affected)
            timing = self._timing
            if timing is not None:
                t_affected, t_before = self._timing_before(keys)
            self._apply(displaced)
            # Remember the evaluated after-costs: the annealer commits
            # the very move it just priced, so commit() can reuse them
            # instead of recomputing (identical floats, same order).
            evaluated: Dict[int, float] = {}
            after = 0.0
            for i in affected:
                cost = self._compute_net_cost(i)
                evaluated[i] = cost
                after += cost
            t_evaluated = None
            if timing is not None:
                t_evaluated, t_after = self._timing_after(t_affected)
            self._revert(displaced)
            self._pending = (move, evaluated, t_evaluated)
            if timing is None:
                return after - before
            return self._timing_delta(
                after - before, t_before, t_after
            )
        # Edge matching: track distinct site-level connection count.
        affected_conns: Set[int] = set()
        for key in keys:
            affected_conns.update(self.conns_of_cell.get(key, ()))
        delta = 0
        removed: List[Tuple] = []
        for i in affected_conns:
            conn_key = self._conn_site_key(i)
            self.conn_counter[conn_key] -= 1
            if self.conn_counter[conn_key] == 0:
                del self.conn_counter[conn_key]
                delta -= 1
            removed.append(conn_key)
        self._apply(displaced)
        added: List[Tuple] = []
        for i in affected_conns:
            conn_key = self._conn_site_key(i)
            count = self.conn_counter.get(conn_key, 0)
            if count == 0:
                delta += 1
            self.conn_counter[conn_key] = count + 1
            added.append(conn_key)
        # Revert.
        self._revert(displaced)
        for conn_key in added:
            self.conn_counter[conn_key] -= 1
            if self.conn_counter[conn_key] == 0:
                del self.conn_counter[conn_key]
        for conn_key in removed:
            self.conn_counter[conn_key] = (
                self.conn_counter.get(conn_key, 0) + 1
            )
        return float(delta)

    def _apply(self, displaced) -> None:
        for key, _from_site, to_site in displaced:
            self.site_of[key] = to_site

    def _revert(self, displaced) -> None:
        for key, from_site, _to_site in displaced:
            self.site_of[key] = from_site

    def commit(self, move) -> None:
        displaced = self._move_cells(move)
        kind = move[0]
        # Update occupancy maps.
        if kind == "blk":
            for key, from_site, _to in displaced:
                _tag, mode, _name = key
                if self.block_at.get((mode, from_site)) == key:
                    del self.block_at[(mode, from_site)]
            for key, _from, to_site in displaced:
                _tag, mode, _name = key
                self.block_at[(mode, to_site)] = key
        else:
            for key, from_site, _to in displaced:
                if self.pad_at.get(from_site) == key:
                    del self.pad_at[from_site]
            for key, _from, to_site in displaced:
                self.pad_at[to_site] = key
        self._apply(displaced)
        # Refresh caches (reusing the costs delta_cost just evaluated
        # for this same move when available).
        pending = getattr(self, "_pending", None)
        if pending is not None and pending[0] == move:
            evaluated, t_evaluated = pending[1], pending[2]
        else:
            evaluated = t_evaluated = None
        self._pending = None
        keys = [d[0] for d in displaced]
        affected_nets: Set[int] = set()
        for key in keys:
            affected_nets.update(self.nets_of_cell.get(key, ()))
        for i in affected_nets:
            self.net_cost[i] = (
                evaluated[i]
                if evaluated is not None and i in evaluated
                else self._compute_net_cost(i)
            )
        self._commit_timing(keys, t_evaluated)
        affected_conns: Set[int] = set()
        for key in keys:
            affected_conns.update(self.conns_of_cell.get(key, ()))
        # Rebuild the counter entries for affected connections: remove
        # using pre-move sites is impossible now, so recompute the
        # counter incrementally via stored keys.
        # (delta_cost left the counter unchanged; redo remove/add.)
        for i in affected_conns:
            old_key = self._conn_keys[i]
            self.conn_counter[old_key] -= 1
            if self.conn_counter[old_key] == 0:
                del self.conn_counter[old_key]
        for i in affected_conns:
            new_key = self._conn_site_key(i)
            self.conn_counter[new_key] = (
                self.conn_counter.get(new_key, 0) + 1
            )
            self._conn_keys[i] = new_key

    # -- results -----------------------------------------------------------

    def result(self, stats: Optional[AnnealingStats] = None
               ) -> CombinedPlacementResult:
        block_sites = {
            (mode, name): self.site_of[("b", mode, name)]
            for mode, circuit in enumerate(self.circuits)
            for name in circuit.blocks
        }
        pad_sites = {
            key[1]: self.site_of[key] for key in self.pad_keys
        }
        return CombinedPlacementResult(
            arch=self.arch,
            block_sites=block_sites,
            pad_sites=pad_sites,
            cost=self.initial_cost(),
            wirelength=self.wirelength_cost(),
            n_tunable_connections=int(self.edge_matching_cost()),
            stats=stats,
        )


def combined_place(
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    timing=None,
) -> CombinedPlacementResult:
    """Run the combined placement of all modes with *strategy*.

    *timing* (a ``CriticalityConfig``) makes the wire-length variant
    timing-driven; it must be ``None`` for edge matching.
    """
    rng = make_rng(seed, f"combined:{strategy.value}")
    problem = CombinedPlacementProblem(
        arch, mode_circuits, rng, strategy, timing=timing
    )
    stats = anneal(problem, rng, schedule)
    return problem.result(stats)


def merge_with_combined_placement(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    timing=None,
) -> Tuple[TunableCircuit, CombinedPlacementResult]:
    """Combined placement followed by Tunable-circuit extraction."""
    placement = combined_place(
        mode_circuits, arch, strategy, seed, schedule, timing=timing
    )
    tunable = merge_from_placement(
        name, mode_circuits, placement.block_sites, placement.pad_sites
    )
    return tunable, placement


class TunablePlacementProblem(PlacementTimingMixin):
    """TPlace: refine the placement of a merged Tunable circuit.

    Cells are whole Tunable LUTs / pads (all modes move together); the
    topology — which LUTs share a Tunable LUT — is fixed.  The cost is
    the same summed per-mode bounding-box estimator the combined
    placement's wire-length option uses; *timing* (a
    ``CriticalityConfig``) adds the criticality-weighted delay term,
    analysed per mode on the specialised circuits at the Tunable
    cells' sites.
    """

    def __init__(self, tunable: TunableCircuit,
                 arch: FpgaArchitecture, rng,
                 randomize: bool = False,
                 timing=None) -> None:
        self.arch = arch
        self.tunable = tunable
        self.tlut_names = sorted(tunable.tluts)
        self.pad_names = sorted(tunable.pads)
        clb_sites = arch.clb_sites()
        pad_sites = arch.pad_sites()
        if len(self.tlut_names) > len(clb_sites):
            raise ValueError("tunable circuit does not fit the grid")
        if len(self.pad_names) > len(pad_sites):
            raise ValueError("tunable pads do not fit the perimeter")

        self.site_of: Dict[str, Site] = {}
        self.cell_at: Dict[Site, str] = {}
        if randomize or any(
            tunable.tluts[n].site is None for n in self.tlut_names
        ):
            shuffled = list(clb_sites)
            rng.shuffle(shuffled)
            for name, site in zip(self.tlut_names, shuffled):
                self.site_of[name] = site
            shuffled_pads = list(pad_sites)
            rng.shuffle(shuffled_pads)
            for name, site in zip(self.pad_names, shuffled_pads):
                self.site_of[name] = site
        else:
            for name in self.tlut_names:
                self.site_of[name] = tunable.tluts[name].site
            for name in self.pad_names:
                self.site_of[name] = tunable.pads[name].site
        for name, site in self.site_of.items():
            self.cell_at[site] = name

        self.clb_sites = clb_sites
        self.all_pad_sites = pad_sites

        # Per-mode nets in tunable-cell space, derived from the
        # tunable connections (the fixed topology).
        sinks_by_source: Dict[Tuple[int, str], List[str]] = {}
        for conn in tunable.connections:
            for mode in conn.activation:
                sinks_by_source.setdefault(
                    (mode, conn.source), []
                ).append(conn.sink)
        self.nets: List[List[str]] = []
        for (_mode, source), sinks in sorted(sinks_by_source.items()):
            cells = [source]
            seen = {source}
            for sink in sinks:
                if sink not in seen:
                    seen.add(sink)
                    cells.append(sink)
            if len(cells) >= 2:
                self.nets.append(cells)
        self.nets_of_cell: Dict[str, List[int]] = {}
        for i, cells in enumerate(self.nets):
            for cell in cells:
                self.nets_of_cell.setdefault(cell, []).append(i)
        self.net_cost = [
            self._compute_net_cost(i) for i in range(len(self.nets))
        ]

        timing_cost = None
        if timing is not None:
            from repro.timing.criticality import (
                PlacementTimingCost,
                tunable_carriers,
            )

            carriers = tunable_carriers(tunable)
            timing_cost = PlacementTimingCost(timing)
            for mode in range(tunable.n_modes):
                timing_cost.add_circuit(
                    tunable.specialize(mode),
                    key_of=lambda cell, m=mode: carriers[(m, cell)],
                )
        self._bind_timing(timing_cost)

    def _compute_net_cost(self, index: int) -> float:
        # Same single-pass inline as the combined problem's.
        cells = self.nets[index]
        n = len(cells)
        if n < 2:
            return 0.0
        site_of = self.site_of
        site = site_of[cells[0]]
        xmin = xmax = site.x
        ymin = ymax = site.y
        for cell in cells:
            site = site_of[cell]
            x = site.x
            y = site.y
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        return q_factor(n) * ((xmax - xmin) + (ymax - ymin))

    def initial_cost(self) -> float:
        return self._combined_cost()

    def size(self) -> int:
        return len(self.tlut_names) + len(self.pad_names)

    def n_nets(self) -> int:
        return len(self.nets)

    def max_rlim(self) -> int:
        return max(self.arch.nx, self.arch.ny) + 2

    def propose(self, rlim: float, rng):
        n_tluts = len(self.tlut_names)
        total = n_tluts + len(self.pad_names)
        if rng.randrange(total) < n_tluts:
            cell = self.tlut_names[rng.randrange(n_tluts)]
            candidates = self.clb_sites
        else:
            cell = self.pad_names[
                rng.randrange(len(self.pad_names))
            ]
            candidates = self.all_pad_sites
        src_site = self.site_of[cell]
        for _ in range(8):
            dst_site = candidates[rng.randrange(len(candidates))]
            if dst_site == src_site:
                continue
            if (
                abs(dst_site.x - src_site.x) > rlim
                or abs(dst_site.y - src_site.y) > rlim
            ):
                continue
            return (cell, src_site, dst_site)
        return None

    def delta_cost(self, move) -> float:
        cell, src_site, dst_site = move
        other = self.cell_at.get(dst_site)
        affected: Set[int] = set(self.nets_of_cell.get(cell, ()))
        if other is not None:
            affected.update(self.nets_of_cell.get(other, ()))
        before = sum(self.net_cost[i] for i in affected)
        timing = self._timing
        if timing is not None:
            t_affected, t_before = self._timing_before(
                self._timing_keys(cell, other)
            )
        self.site_of[cell] = dst_site
        if other is not None:
            self.site_of[other] = src_site
        # Remember the after-costs for commit() of this same move
        # (identical floats, same order).
        evaluated: Dict[int, float] = {}
        after = 0.0
        for i in affected:
            cost = self._compute_net_cost(i)
            evaluated[i] = cost
            after += cost
        t_evaluated = None
        if timing is not None:
            t_evaluated, t_after = self._timing_after(t_affected)
        self.site_of[cell] = src_site
        if other is not None:
            self.site_of[other] = dst_site
        self._pending = (move, evaluated, t_evaluated)
        if timing is None:
            return after - before
        return self._timing_delta(after - before, t_before, t_after)

    def commit(self, move) -> None:
        cell, src_site, dst_site = move
        other = self.cell_at.get(dst_site)
        self.site_of[cell] = dst_site
        self.cell_at[dst_site] = cell
        if other is not None:
            self.site_of[other] = src_site
            self.cell_at[src_site] = other
        else:
            del self.cell_at[src_site]
        pending = getattr(self, "_pending", None)
        if pending is not None and pending[0] == move:
            evaluated, t_evaluated = pending[1], pending[2]
        else:
            evaluated = t_evaluated = None
        self._pending = None
        affected: Set[int] = set(self.nets_of_cell.get(cell, ()))
        if other is not None:
            affected.update(self.nets_of_cell.get(other, ()))
        for i in affected:
            self.net_cost[i] = (
                evaluated[i]
                if evaluated is not None and i in evaluated
                else self._compute_net_cost(i)
            )
        self._commit_timing(
            self._timing_keys(cell, other), t_evaluated
        )

    def apply_to_tunable(self) -> None:
        """Write the refined sites back into the Tunable circuit."""
        for name in self.tlut_names:
            self.tunable.tluts[name].site = self.site_of[name]
        for name in self.pad_names:
            self.tunable.pads[name].site = self.site_of[name]


def tplace(
    tunable: TunableCircuit,
    arch: FpgaArchitecture,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    randomize: bool = False,
    timing=None,
) -> AnnealingStats:
    """Run TPlace on *tunable*; sites are updated in place.

    *timing* (a ``CriticalityConfig``) makes the refinement
    timing-driven; ``None`` is bit-identical to the historical run.
    """
    rng = make_rng(seed, "tplace")
    problem = TunablePlacementProblem(
        tunable, arch, rng, randomize=randomize, timing=timing
    )
    stats = anneal(problem, rng, schedule)
    problem.apply_to_tunable()
    return stats
