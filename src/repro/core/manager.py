"""The reconfiguration manager (paper Section II).

"The subsystem that performs the reconfiguration is called the
reconfiguration manager and is generally implemented in software."

For a parameterised configuration the manager's job is: on a mode
switch, evaluate every Boolean function of the mode bits and write the
resulting values into the configuration memory.  The paper assumes the
functions are evaluated off-line; this module implements both views:

* :class:`ParameterizedConfiguration` — the artefact the DCS flow
  produces: static bits plus, for every parameterised bit, its value
  per mode (equivalently, its Boolean function of the mode bits —
  rendered on demand via Quine-McCluskey);
* :class:`ReconfigurationManager` — replays mode switches against a
  simulated configuration memory, returning exactly which bits were
  rewritten, so the bit-count metrics of the paper can be audited
  against an executable model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.modes import ModeEncoding
from repro.route.router import RoutingResult


@dataclass
class ParameterizedConfiguration:
    """A parameterised configuration of the routing fabric.

    ``static_on`` are bits that are one in every mode; all other
    non-parameterised bits are statically zero.  ``parameterized``
    maps a bit id to the frozenset of modes in which it is one.
    """

    n_modes: int
    n_bits_total: int
    static_on: FrozenSet[int]
    parameterized: Dict[int, FrozenSet[int]]

    @classmethod
    def from_routing(
        cls, result: RoutingResult, n_bits_total: int
    ) -> "ParameterizedConfiguration":
        """Derive the parameterised configuration from a TRoute result."""
        per_mode = [
            result.bits_on(mode) for mode in range(result.n_modes)
        ]
        union: Set[int] = set()
        intersection: Optional[Set[int]] = None
        for bits in per_mode:
            union |= bits
            intersection = (
                set(bits) if intersection is None
                else intersection & bits
            )
        intersection = intersection or set()
        parameterized = {}
        for bit in union - intersection:
            parameterized[bit] = frozenset(
                mode
                for mode in range(result.n_modes)
                if bit in per_mode[mode]
            )
        return cls(
            n_modes=result.n_modes,
            n_bits_total=n_bits_total,
            static_on=frozenset(intersection),
            parameterized=parameterized,
        )

    # -- queries ----------------------------------------------------------

    def n_parameterized(self) -> int:
        return len(self.parameterized)

    def bit_value(self, bit: int, mode: int) -> bool:
        """Value of *bit* in *mode*."""
        if bit in self.static_on:
            return True
        modes = self.parameterized.get(bit)
        if modes is None:
            return False
        return mode in modes

    def bits_on(self, mode: int) -> Set[int]:
        """Full on-set of *mode*'s configuration."""
        on = set(self.static_on)
        for bit, modes in self.parameterized.items():
            if mode in modes:
                on.add(bit)
        return on

    def bit_expression(self, bit: int,
                       encoding: Optional[ModeEncoding] = None) -> str:
        """Boolean function of the mode bits for *bit* (e.g. ``m0``)."""
        encoding = encoding or ModeEncoding(self.n_modes)
        if bit in self.static_on:
            return "1"
        modes = self.parameterized.get(bit)
        if not modes:
            return "0"
        return encoding.expression(modes)


@dataclass
class SwitchRecord:
    """One executed mode switch."""

    from_mode: Optional[int]
    to_mode: int
    bits_written: int


class ReconfigurationManager:
    """Software model of the runtime reconfiguration manager.

    Two write policies mirror the paper:

    * ``policy="evaluate"`` — the DCS manager: on a switch it writes
      every parameterised bit's value for the new mode (the paper
      counts all parameterised bits, conservatively assuming each is
      rewritten);
    * ``policy="minimal"`` — an idealised manager that compares old
      and new values and writes only bits that actually change
      (a lower bound; useful for the ablation the paper hints at when
      discussing LUT-bit diffing).
    """

    def __init__(
        self,
        configuration: ParameterizedConfiguration,
        policy: str = "evaluate",
    ) -> None:
        if policy not in ("evaluate", "minimal"):
            raise ValueError("policy must be 'evaluate' or 'minimal'")
        self.configuration = configuration
        self.policy = policy
        self.current_mode: Optional[int] = None
        # Simulated configuration memory: set of on-bits.
        self.memory: Set[int] = set()
        self.history: List[SwitchRecord] = []

    def load_initial(self, mode: int) -> SwitchRecord:
        """Full configuration load (power-up), then enter *mode*."""
        self._check_mode(mode)
        self.memory = self.configuration.bits_on(mode)
        record = SwitchRecord(
            None, mode, self.configuration.n_bits_total
        )
        self.current_mode = mode
        self.history.append(record)
        return record

    def switch(self, mode: int) -> SwitchRecord:
        """Switch to *mode*, rewriting parameterised bits only."""
        self._check_mode(mode)
        if self.current_mode is None:
            return self.load_initial(mode)
        written = 0
        for bit, modes in self.configuration.parameterized.items():
            new_value = mode in modes
            if self.policy == "minimal":
                old_value = bit in self.memory
                if old_value == new_value:
                    continue
            written += 1
            if new_value:
                self.memory.add(bit)
            else:
                self.memory.discard(bit)
        record = SwitchRecord(self.current_mode, mode, written)
        self.current_mode = mode
        self.history.append(record)
        return record

    def verify(self) -> None:
        """Memory must equal the current mode's exact configuration."""
        if self.current_mode is None:
            raise RuntimeError("no mode loaded")
        expected = self.configuration.bits_on(self.current_mode)
        if self.memory != expected:
            missing = expected - self.memory
            extra = self.memory - expected
            raise AssertionError(
                f"configuration memory corrupt: {len(missing)} "
                f"missing, {len(extra)} extra bits"
            )

    def _check_mode(self, mode: int) -> None:
        if not 0 <= mode < self.configuration.n_modes:
            raise ValueError(f"mode {mode} out of range")
