"""End-to-end tool flows: MDR baseline and the paper's DCS flow.

``MdrFlow`` implements Fig. 2(a): every mode is placed and routed
separately in the same reconfigurable region; a mode switch rewrites
the whole region.

``DcsFlow`` implements Fig. 2(b): the per-mode LUT circuits are merged
into one Tunable circuit via combined placement (edge-matching or
wire-length cost), optionally refined by TPlace, and routed by TRoute;
a mode switch rewrites the LUT bits plus only the parameterised routing
bits.

``implement_multi_mode`` drives both flows on a shared architecture
(same grid, same channel width) so their bit counts are comparable, and
retries with a wider channel when routing fails — mirroring the paper's
"20% bigger than minimum" sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.architecture import FpgaArchitecture, size_for_circuits
from repro.arch.rrg import RoutingResourceGraph, build_rrg
from repro.core.combined_placement import (
    CombinedPlacementResult,
    merge_with_combined_placement,
    tplace,
)
from repro.core.merge import MergeStrategy, merge_by_index
from repro.core.reconfig import (
    ReconfigCost,
    dcs_cost,
    diff_cost,
    mdr_cost,
    speedup,
)
from repro.core.tunable import TunableCircuit
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import Placement, place_circuit
from repro.route.router import RoutingError, RoutingResult
from repro.route.troute import (
    route_lut_circuit,
    route_tunable_circuit,
)


@dataclass
class FlowOptions:
    """Knobs shared by both flows.

    ``channel_width=None`` lets the driver estimate a width from
    placement wire-length and grow it on routing failure; a fixed value
    reproduces a specific experiment exactly.
    """

    seed: int = 0
    k: int = 4
    slack: float = 1.2
    io_rat: int = 2
    fc_in: float = 0.5
    fc_out: float = 0.5
    channel_width: Optional[int] = None
    inner_num: float = 1.0
    tplace_refine: bool = True
    max_width_retries: int = 5
    router_max_iterations: int = 40
    #: Cross-mode wire-affinity of TRoute (< 1 steers a net's per-mode
    #: branches onto shared wires; 1.0 disables the bias).
    net_affinity: float = 0.5
    #: Cross-mode switch-bit affinity of TRoute (< 1 steers connections
    #: onto switches already on in the other modes, turning their bits
    #: static; 1.0 disables the bias).
    bit_affinity: float = 0.3
    #: Extra TRoute sweeps after congestion is resolved that reroute
    #: every net with the sharing discounts active, keeping the legal
    #: result with the fewest parameterised bits.  Sweeps stop early
    #: when a sweep no longer improves.
    sharing_passes: int = 3
    #: Channel sizing when ``channel_width`` is None: ``"estimate"``
    #: derives a width from netlist statistics and grows it on routing
    #: failure; ``"search"`` runs the paper's methodology exactly — a
    #: binary search for the minimum routable width plus 20% slack
    #: (slower: several trial routings).
    sizing: str = "estimate"

    def schedule(self) -> AnnealingSchedule:
        return AnnealingSchedule(inner_num=self.inner_num)


@dataclass
class ModeImplementation:
    """One mode's separate (MDR) implementation."""

    mode: int
    placement: Placement
    routing: RoutingResult

    def bits_on(self) -> Set[int]:
        return self.routing.bits_on(0)

    def wirelength(self) -> int:
        return self.routing.total_wirelength(0)


@dataclass
class MdrResult:
    """Outcome of the MDR flow on one multi-mode circuit."""

    arch: FpgaArchitecture
    implementations: List[ModeImplementation]
    cost: ReconfigCost
    diff: ReconfigCost

    def per_mode_wirelength(self) -> List[int]:
        return [impl.wirelength() for impl in self.implementations]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)


@dataclass
class DcsResult:
    """Outcome of the DCS flow with one merge strategy."""

    arch: FpgaArchitecture
    strategy: MergeStrategy
    tunable: TunableCircuit
    routing: RoutingResult
    cost: ReconfigCost
    placement: Optional[CombinedPlacementResult] = None

    def per_mode_wirelength(self) -> List[int]:
        return [
            self.routing.total_wirelength(m)
            for m in range(self.tunable.n_modes)
        ]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)


@dataclass
class MultiModeResult:
    """Both flows on one multi-mode circuit, on a shared architecture."""

    name: str
    arch: FpgaArchitecture
    mdr: MdrResult
    dcs: Dict[MergeStrategy, DcsResult]

    def speedup(self, strategy: MergeStrategy) -> float:
        """Fig. 5: reconfiguration speed-up of DCS over MDR."""
        return speedup(self.mdr.cost, self.dcs[strategy].cost)

    def wirelength_ratio(self, strategy: MergeStrategy) -> float:
        """Fig. 7: per-mode wires of DCS relative to MDR."""
        return (
            self.dcs[strategy].mean_wirelength()
            / self.mdr.mean_wirelength()
        )


class MdrFlow:
    """Modular Dynamic Reconfiguration: implement each mode separately."""

    def __init__(self, options: Optional[FlowOptions] = None) -> None:
        self.options = options or FlowOptions()

    def run(
        self,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        rrg: Optional[RoutingResourceGraph] = None,
    ) -> MdrResult:
        """Place & route every mode independently in the region."""
        options = self.options
        rrg = rrg or build_rrg(arch)
        implementations = []
        for mode, circuit in enumerate(mode_circuits):
            placement = place_circuit(
                circuit,
                arch,
                seed=options.seed + mode,
                schedule=options.schedule(),
            )
            routing = route_lut_circuit(
                circuit,
                placement,
                rrg,
                max_iterations=options.router_max_iterations,
            )
            implementations.append(
                ModeImplementation(mode, placement, routing)
            )
        per_mode_bits = [impl.bits_on() for impl in implementations]
        return MdrResult(
            arch=arch,
            implementations=implementations,
            cost=mdr_cost(arch, rrg),
            diff=diff_cost(arch, per_mode_bits),
        )


class DcsFlow:
    """The paper's flow: merge + Dynamic Circuit Specialization."""

    def __init__(self, options: Optional[FlowOptions] = None) -> None:
        self.options = options or FlowOptions()

    def run(
        self,
        name: str,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
        rrg: Optional[RoutingResourceGraph] = None,
    ) -> DcsResult:
        """Combined placement, merge, TPlace, TRoute, bit accounting."""
        options = self.options
        rrg = rrg or build_rrg(arch)
        n_modes = len(mode_circuits)

        placement_result: Optional[CombinedPlacementResult] = None
        if strategy == MergeStrategy.BY_INDEX:
            tunable = merge_by_index(name, mode_circuits)
            tplace(
                tunable,
                arch,
                seed=options.seed,
                schedule=options.schedule(),
                randomize=True,
            )
        else:
            tunable, placement_result = merge_with_combined_placement(
                name,
                mode_circuits,
                arch,
                strategy=strategy,
                seed=options.seed,
                schedule=options.schedule(),
            )
            if options.tplace_refine:
                tplace(
                    tunable,
                    arch,
                    seed=options.seed,
                    schedule=options.schedule(),
                )
        routing = route_tunable_circuit(
            rrg,
            tunable.site_connections(),
            n_modes,
            net_affinity=options.net_affinity,
            bit_affinity=options.bit_affinity,
            sharing_passes=options.sharing_passes,
            max_iterations=options.router_max_iterations,
        )
        per_mode_bits = [
            routing.bits_on(m) for m in range(n_modes)
        ]
        return DcsResult(
            arch=arch,
            strategy=strategy,
            tunable=tunable,
            routing=routing,
            cost=dcs_cost(arch, per_mode_bits),
            placement=placement_result,
        )


def estimate_channel_width(
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    utilization: float = 0.55,
    slack: float = 1.2,
    floor: int = 6,
    ceiling: int = 48,
) -> int:
    """Estimate a routable channel width from netlist statistics.

    Average wiring demand per channel segment is approximated from the
    connection count and the mean Manhattan length of a random
    placement (~ one third of the grid semi-perimeter); the estimate is
    then inflated by ``1/utilization`` (peak-to-average) and the
    paper's 20% slack.
    """
    n_segments = max(1, arch.n_channel_segments())
    demand = 0.0
    for circuit in mode_circuits:
        n_conns = len(circuit.connections())
        mean_length = (arch.nx + arch.ny) / 6.0
        demand = max(demand, n_conns * mean_length)
    width = int(demand / n_segments / utilization * slack) + 1
    return max(floor, min(ceiling, width))


def implement_multi_mode(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    options: Optional[FlowOptions] = None,
    strategies: Sequence[MergeStrategy] = (
        MergeStrategy.EDGE_MATCHING,
        MergeStrategy.WIRE_LENGTH,
    ),
) -> MultiModeResult:
    """Run MDR and DCS on a shared architecture; retry wider on failure.

    This is the experiment driver: one call per multi-mode circuit
    yields every quantity Figs. 5-7 need.
    """
    options = options or FlowOptions()
    n_blocks = max(c.n_luts() for c in mode_circuits)
    io_names = set()
    for circuit in mode_circuits:
        io_names.update(circuit.inputs)
        io_names.update(circuit.outputs)

    arch = size_for_circuits(
        n_blocks,
        len(io_names),
        k=options.k,
        channel_width=options.channel_width or 8,
        slack=options.slack,
        io_rat=options.io_rat,
        fc_in=options.fc_in,
        fc_out=options.fc_out,
    )
    if options.channel_width is not None:
        width = options.channel_width
    elif options.sizing == "search":
        from repro.arch.sizing import paper_channel_width

        width = paper_channel_width(
            mode_circuits,
            arch,
            slack=options.slack,
            seed=options.seed,
            schedule=options.schedule(),
            router_max_iterations=options.router_max_iterations,
        )
    elif options.sizing == "estimate":
        width = estimate_channel_width(mode_circuits, arch)
    else:
        raise ValueError(
            f"unknown sizing {options.sizing!r} "
            f"(use 'estimate' or 'search')"
        )

    last_error: Optional[Exception] = None
    for _attempt in range(options.max_width_retries):
        arch = FpgaArchitecture(
            nx=arch.nx,
            ny=arch.ny,
            k=arch.k,
            channel_width=width,
            fc_in=arch.fc_in,
            fc_out=arch.fc_out,
            io_rat=arch.io_rat,
        )
        rrg = build_rrg(arch)
        try:
            mdr = MdrFlow(options).run(mode_circuits, arch, rrg)
            dcs: Dict[MergeStrategy, DcsResult] = {}
            for strategy in strategies:
                dcs[strategy] = DcsFlow(options).run(
                    name, mode_circuits, arch, strategy, rrg
                )
            return MultiModeResult(name, arch, mdr, dcs)
        except RoutingError as error:
            last_error = error
            width = max(width + 2, int(width * 1.25))
    raise RoutingError(
        f"{name}: unroutable even at channel width {width}: "
        f"{last_error}"
    )
