"""End-to-end tool flows: MDR baseline and the paper's DCS flow.

``MdrFlow`` implements Fig. 2(a): every mode is placed and routed
separately in the same reconfigurable region; a mode switch rewrites
the whole region.

``DcsFlow`` implements Fig. 2(b): the per-mode LUT circuits are merged
into one Tunable circuit via combined placement (edge-matching or
wire-length cost), optionally refined by TPlace, and routed by TRoute;
a mode switch rewrites the LUT bits plus only the parameterised routing
bits.

``implement_multi_mode`` drives both flows on a shared architecture
(same grid, same channel width) so their bit counts are comparable, and
retries with a wider channel when routing fails — mirroring the paper's
"20% bigger than minimum" sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.architecture import FpgaArchitecture, size_for_circuits
from repro.arch.rrg import RoutingResourceGraph, build_rrg
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog, StageRecord, timed_call
from repro.exec.jobs import (
    Task,
    effective_workers,
    resolve_workers,
    run_tasks,
)
from repro.core.combined_placement import (
    CombinedPlacementResult,
    merge_with_combined_placement,
    tplace,
)
from repro.core.merge import MergeStrategy, merge_by_index
from repro.core.reconfig import (
    ReconfigCost,
    dcs_cost,
    diff_cost,
    mdr_cost,
    speedup,
)
from repro.core.tunable import TunableCircuit
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import Placement, place_circuit
from repro.route.router import RoutingError, RoutingResult
from repro.route.troute import (
    route_lut_circuit,
    route_tunable_circuit,
)


@dataclass
class FlowOptions:
    """Knobs shared by both flows.

    ``channel_width=None`` lets the driver estimate a width from
    placement wire-length and grow it on routing failure; a fixed value
    reproduces a specific experiment exactly.
    """

    seed: int = 0
    k: int = 4
    slack: float = 1.2
    io_rat: int = 2
    fc_in: float = 0.5
    fc_out: float = 0.5
    channel_width: Optional[int] = None
    inner_num: float = 1.0
    tplace_refine: bool = True
    max_width_retries: int = 5
    router_max_iterations: int = 40
    #: Cross-mode wire-affinity of TRoute (< 1 steers a net's per-mode
    #: branches onto shared wires; 1.0 disables the bias).
    net_affinity: float = 0.5
    #: Cross-mode switch-bit affinity of TRoute (< 1 steers connections
    #: onto switches already on in the other modes, turning their bits
    #: static; 1.0 disables the bias).
    bit_affinity: float = 0.3
    #: Extra TRoute sweeps after congestion is resolved that reroute
    #: every net with the sharing discounts active, keeping the legal
    #: result with the fewest parameterised bits.  Sweeps stop early
    #: when a sweep no longer improves.
    sharing_passes: int = 3
    #: Channel sizing when ``channel_width`` is None: ``"estimate"``
    #: derives a width from netlist statistics and grows it on routing
    #: failure; ``"search"`` runs the paper's methodology exactly — a
    #: binary search for the minimum routable width plus 20% slack
    #: (slower: several trial routings).
    sizing: str = "estimate"
    #: Timing-driven implementation: thread one criticality model
    #: (:mod:`repro.timing.criticality`) through placement (a
    #: criticality-weighted delay term in every annealing cost) and
    #: routing (VPR's ``crit*delay + (1-crit)*congestion`` pricing).
    #: ``False`` (the default) is bit-identical to the historical
    #: wirelength-driven flow.
    timing_driven: bool = False
    #: Criticality sharpening ``crit ** exponent``; larger exponents
    #: concentrate effort on the most critical connections, and 0
    #: degrades a timing-driven run to pure congestion/wire length.
    criticality_exponent: float = 1.0
    #: Placement-level mix between wire length (0.0) and the timing
    #: term (1.0); the router ignores it (criticality itself blends
    #: delay against congestion there).
    timing_tradeoff: float = 0.5
    #: Route with the batched-wavefront PathFinder core
    #: (:mod:`repro.route.batched`): bucket-queue searches that price
    #: whole cost-quantized frontiers per numpy call, plus
    #: parallel-net negotiation with deterministic conflict replay.
    #: Results are QoR-equivalent to the scalar/vectorized cores and
    #: independent of the worker count, but not bit-identical to
    #: them.
    batched_router: bool = False
    #: Anneal single-mode placements with the batched-move engine
    #: (:func:`repro.place.annealing.anneal_batched`): moves priced in
    #: vectors against a frozen batch-start state, conflicts re-priced
    #: live.  QoR-equivalent and deterministic per seed, not
    #: bit-identical to the scalar engine; timing-driven placements
    #: always use the scalar engine.
    batched_placer: bool = False
    #: Route with the precomputed lookahead heuristic
    #: (:mod:`repro.route.lookahead`): a one-shot backward-Dijkstra
    #: sweep over the architecture's (Δx, Δy, node-kind) quotient
    #: graph yields admissible per-target lower bounds that are
    #: tighter than ``astar_fac * manhattan``, shrinking every
    #: search's explored frontier.  Tables are memoized per
    #: architecture in the stage cache (``"lookahead"`` stage).
    #: QoR-gated opt-in: the tighter heuristic changes tie-breaks
    #: against the Manhattan default, so results differ from the
    #: historical flow (the scalar and vectorized cores remain
    #: bit-identical to *each other* with it enabled).
    router_lookahead: bool = False
    #: Partial rip-up: between negotiation iterations, keep every
    #: route that avoids congested nodes (and whose per-mode trunk
    #: anchoring survives) and reroute only the congested remainder.
    #: QoR-gated opt-in paired with ``router_lookahead``; a no-op for
    #: the batched core, which always rips whole nets.
    partial_ripup: bool = False

    # Wire typing of every knob (to_dict/from_dict boundary).  The
    # round-trip test asserts these partition the dataclass fields and
    # OPTION_STAGE_COVERAGE exactly, so adding a field without
    # declaring its wire type fails fast.
    _INT_KNOBS = frozenset({
        "seed", "k", "io_rat", "max_width_retries",
        "router_max_iterations", "sharing_passes",
    })
    _FLOAT_KNOBS = frozenset({
        "slack", "fc_in", "fc_out", "inner_num", "net_affinity",
        "bit_affinity", "criticality_exponent", "timing_tradeoff",
    })
    _BOOL_KNOBS = frozenset({
        "tplace_refine", "timing_driven", "batched_router",
        "batched_placer", "router_lookahead", "partial_ripup",
    })
    _OPTIONAL_INT_KNOBS = frozenset({"channel_width"})
    _CHOICE_KNOBS = {"sizing": ("estimate", "search")}

    def __post_init__(self) -> None:
        """Reject out-of-range knobs with a clear error.

        Only numeric ranges are enforced here — values no stage could
        honour.  Enum-ish knobs (``sizing``) are validated where they
        are consumed, and strictly at the wire boundary
        (:meth:`from_dict`), so exploratory in-process construction
        stays permissive.
        """
        def require(ok: bool, knob: str, why: str) -> None:
            if not ok:
                raise ValueError(
                    f"FlowOptions.{knob} out of range: {why} "
                    f"(got {getattr(self, knob)!r})"
                )

        require(self.k >= 2, "k", "LUT arity must be >= 2")
        require(self.slack > 0, "slack",
                "channel-width slack factor must be > 0")
        require(self.io_rat >= 1, "io_rat", "I/O pads per tile must be >= 1")
        require(0 < self.fc_in <= 1, "fc_in",
                "connection-box fraction must be in (0, 1]")
        require(0 < self.fc_out <= 1, "fc_out",
                "connection-box fraction must be in (0, 1]")
        require(self.channel_width is None or self.channel_width >= 1,
                "channel_width", "explicit channel width must be >= 1")
        require(self.inner_num > 0, "inner_num",
                "annealing effort must be > 0")
        require(self.max_width_retries >= 1, "max_width_retries",
                "width retries must be >= 1")
        require(self.router_max_iterations >= 1, "router_max_iterations",
                "router iteration budget must be >= 1")
        require(0 < self.net_affinity <= 1, "net_affinity",
                "TRoute affinity discount must be in (0, 1]")
        require(0 < self.bit_affinity <= 1, "bit_affinity",
                "TRoute affinity discount must be in (0, 1]")
        require(self.sharing_passes >= 0, "sharing_passes",
                "sharing sweeps must be >= 0")
        require(self.criticality_exponent >= 0, "criticality_exponent",
                "criticality exponent must be >= 0")
        require(0 <= self.timing_tradeoff <= 1, "timing_tradeoff",
                "timing tradeoff must be in [0, 1]")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of every knob; exact inverse of
        :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: object) -> "FlowOptions":
        """Build options from an untrusted wire mapping.

        Strict by design — this is the HTTP API boundary:

        * unknown keys are rejected (a typo must not silently fall
          back to a default and dedup against the wrong fingerprint);
        * numbers are coerced to the declared knob type (``1`` and
          ``1.0`` fingerprint differently, so cross-client dedup
          needs canonical types);
        * enum knobs must name a known choice;
        * numeric ranges are then enforced by ``__post_init__``.
        """
        try:
            items = dict(data)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise ValueError(
                "FlowOptions payload must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(items) - known)
        if unknown:
            raise ValueError(
                "unknown FlowOptions key(s): " + ", ".join(unknown)
                + "; known keys: " + ", ".join(sorted(known))
            )
        kwargs: Dict[str, object] = {}
        for name, value in items.items():
            if name in cls._FLOAT_KNOBS:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(
                        f"FlowOptions.{name} must be a number, got {value!r}"
                    )
                kwargs[name] = float(value)
            elif name in cls._INT_KNOBS:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(
                        f"FlowOptions.{name} must be an integer, got {value!r}"
                    )
                kwargs[name] = int(value)
            elif name in cls._OPTIONAL_INT_KNOBS:
                if value is not None and (
                    isinstance(value, bool) or not isinstance(value, int)
                ):
                    raise ValueError(
                        f"FlowOptions.{name} must be an integer or null, "
                        f"got {value!r}"
                    )
                kwargs[name] = value
            elif name in cls._BOOL_KNOBS:
                if not isinstance(value, bool):
                    raise ValueError(
                        f"FlowOptions.{name} must be a boolean, got {value!r}"
                    )
                kwargs[name] = value
            else:
                choices = cls._CHOICE_KNOBS[name]
                if value not in choices:
                    raise ValueError(
                        f"FlowOptions.{name} must be one of "
                        f"{', '.join(choices)}; got {value!r}"
                    )
                kwargs[name] = value
        return cls(**kwargs)

    def schedule(self) -> AnnealingSchedule:
        return AnnealingSchedule(inner_num=self.inner_num)

    def criticality(self):
        """The flow's :class:`~repro.timing.criticality
        .CriticalityConfig`, or ``None`` when the run is not
        timing-driven (also for ``criticality_exponent <= 0``, which
        defines the timing term away entirely)."""
        if not self.timing_driven or self.criticality_exponent <= 0:
            return None
        from repro.timing.criticality import CriticalityConfig

        return CriticalityConfig(
            exponent=self.criticality_exponent,
            tradeoff=self.timing_tradeoff,
        )


# ---------------------------------------------------------------------------
# Stage cache keys
# ---------------------------------------------------------------------------
#
# Each cached stage is keyed by exactly the FlowOptions-derived inputs
# that reach its computation, built by the functions below (the flow
# and the key-coverage test share them).  OPTION_STAGE_COVERAGE
# declares, per FlowOptions field, which stage keys the field perturbs
# *directly*; fields marked only "multimode" influence the per-stage
# runs indirectly through inputs those keys already carry (k/slack/...
# shape the architecture, seed shapes the placement fed to route_lut).
# tests/test_option_fingerprints.py asserts the declaration is exact
# and total, so a newly added knob that nobody classified — one that
# could silently alias stale cache entries — fails the suite.


def _timing_key(options: "FlowOptions") -> Tuple:
    return (
        options.timing_driven,
        options.criticality_exponent,
        options.timing_tradeoff,
    )


def place_stage_inputs(
    circuit: LutCircuit,
    arch: FpgaArchitecture,
    options: "FlowOptions",
    mode: int,
) -> Tuple:
    """Key inputs of the ``place`` stage (one mode's placement)."""
    return (
        circuit, arch, options.seed + mode, options.schedule(),
        options.batched_placer,
    ) + _timing_key(options)


def route_lut_stage_inputs(
    circuit: LutCircuit,
    placement: Placement,
    arch: FpgaArchitecture,
    options: "FlowOptions",
) -> Tuple:
    """Key inputs of the ``route_lut`` stage (one mode's routing)."""
    return (
        circuit, placement, arch, options.router_max_iterations,
        options.batched_router, options.router_lookahead,
        options.partial_ripup,
    ) + _timing_key(options)


def dcs_stage_inputs(
    name: str,
    mode_circuits: Tuple[LutCircuit, ...],
    arch: FpgaArchitecture,
    strategy: MergeStrategy,
    options: "FlowOptions",
) -> Tuple:
    """Key inputs of the ``dcs`` stage (merge + TPlace + TRoute)."""
    return (
        name, mode_circuits, arch, strategy,
        options.seed, options.schedule(), options.tplace_refine,
        options.net_affinity, options.bit_affinity,
        options.sharing_passes, options.router_max_iterations,
        options.batched_router, options.router_lookahead,
        options.partial_ripup,
    ) + _timing_key(options)


def lookahead_stage_inputs(
    arch: FpgaArchitecture,
    options: "FlowOptions",
) -> Tuple:
    """Key inputs of the ``lookahead`` stage (per-arch cost tables).

    The tables depend only on the architecture (the RRG is
    deterministic from it) and on the delay model — present exactly
    when the flow is timing-driven.  Every other knob leaves them
    untouched, so one build serves all nets, modes, seeds and
    campaign variants on the same fabric.
    """
    # The tables depend only on the delay model projected out of the
    # criticality config; exponent/tradeoff never reach the key or
    # the build, so 'lookahead' is deliberately absent from their
    # OPTION_STAGE_COVERAGE sets.
    # repro: allow[RPR101] only .model reaches the lookahead key
    timing = options.criticality()
    model = timing.model if timing is not None else None
    return (arch, model)


def multimode_stage_inputs(
    name: str,
    mode_circuits: Tuple[LutCircuit, ...],
    options: "FlowOptions",
    strategies: Tuple[MergeStrategy, ...],
) -> Tuple:
    """Key inputs of the whole-result ``multimode`` stage."""
    return (name, mode_circuits, options, strategies)


#: FlowOptions field -> stage keys it perturbs directly (see above).
#: The ``campaign`` stage (one campaign run's QoR record, see
#: :func:`repro.bench.campaign.campaign_stage_inputs`) embeds the
#: whole options object like ``multimode`` does, so every field
#: appears in its set.
OPTION_STAGE_COVERAGE: Dict[str, frozenset] = {
    "seed": frozenset({"place", "dcs", "multimode", "campaign"}),
    "k": frozenset({"multimode", "campaign"}),
    "slack": frozenset({"multimode", "campaign"}),
    "io_rat": frozenset({"multimode", "campaign"}),
    "fc_in": frozenset({"multimode", "campaign"}),
    "fc_out": frozenset({"multimode", "campaign"}),
    "channel_width": frozenset({"multimode", "campaign"}),
    "inner_num": frozenset(
        {"place", "dcs", "multimode", "campaign"}
    ),
    "tplace_refine": frozenset({"dcs", "multimode", "campaign"}),
    "max_width_retries": frozenset({"multimode", "campaign"}),
    "router_max_iterations": frozenset(
        {"route_lut", "dcs", "multimode", "campaign"}
    ),
    "net_affinity": frozenset({"dcs", "multimode", "campaign"}),
    "bit_affinity": frozenset({"dcs", "multimode", "campaign"}),
    "sharing_passes": frozenset({"dcs", "multimode", "campaign"}),
    "sizing": frozenset({"multimode", "campaign"}),
    "timing_driven": frozenset(
        {"place", "route_lut", "dcs", "lookahead", "multimode",
         "campaign"}
    ),
    "criticality_exponent": frozenset(
        {"place", "route_lut", "dcs", "multimode", "campaign"}
    ),
    "timing_tradeoff": frozenset(
        {"place", "route_lut", "dcs", "multimode", "campaign"}
    ),
    "batched_router": frozenset(
        {"route_lut", "dcs", "multimode", "campaign"}
    ),
    "batched_placer": frozenset({"place", "multimode", "campaign"}),
    "router_lookahead": frozenset(
        {"route_lut", "dcs", "multimode", "campaign"}
    ),
    "partial_ripup": frozenset(
        {"route_lut", "dcs", "multimode", "campaign"}
    ),
}


@dataclass
class ModeImplementation:
    """One mode's separate (MDR) implementation.

    ``circuit`` is the mode's LUT circuit — carried along so routed
    timing (Fmax) can be analysed without re-deriving the netlist.
    """

    mode: int
    placement: Placement
    routing: RoutingResult
    circuit: Optional[LutCircuit] = None

    def bits_on(self) -> Set[int]:
        return self.routing.bits_on(0)

    def wirelength(self) -> int:
        return self.routing.total_wirelength(0)

    def sta(self, model=None):
        """Routed critical path of this mode (a ``StaReport``)."""
        if self.circuit is None:
            raise ValueError(
                "implementation carries no circuit; rebuild the "
                "result with the current flow to analyse timing"
            )
        from repro.timing.sta import (
            mdr_arc_delays,
            routed_critical_path,
        )

        arcs = mdr_arc_delays(
            self.circuit, self.placement, self.routing, model
        )
        return routed_critical_path(self.circuit, arcs, model)

    def fmax(self, model=None) -> float:
        """Max clock frequency (1 / routed critical delay)."""
        return self.sta(model).frequency()


@dataclass
class MdrResult:
    """Outcome of the MDR flow on one multi-mode circuit."""

    arch: FpgaArchitecture
    implementations: List[ModeImplementation]
    cost: ReconfigCost
    diff: ReconfigCost

    def per_mode_wirelength(self) -> List[int]:
        return [impl.wirelength() for impl in self.implementations]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)

    def per_mode_sta(self, model=None) -> List["StaReport"]:
        """Routed critical-path report of every mode.

        Default-model reports are computed once and cached on the
        result (routings never mutate after assembly), so reporting
        layers — the harness tables, the CLI summary — can all ask
        without re-walking the route trees.  ``pack_result`` rebuilds
        via ``dataclasses.replace``, so the cache never reaches the
        stage cache's pickles.
        """
        if model is not None:
            return [impl.sta(model) for impl in self.implementations]
        cached = getattr(self, "_sta_reports", None)
        if cached is None:
            cached = [impl.sta() for impl in self.implementations]
            self._sta_reports = cached
        return cached

    def per_mode_critical_delay(self, model=None) -> List[float]:
        return [r.critical_delay for r in self.per_mode_sta(model)]

    def per_mode_fmax(self, model=None) -> List[float]:
        """Per-mode max clock frequency (the paper's actual metric)."""
        return [r.frequency() for r in self.per_mode_sta(model)]


@dataclass
class DcsResult:
    """Outcome of the DCS flow with one merge strategy."""

    arch: FpgaArchitecture
    strategy: MergeStrategy
    tunable: TunableCircuit
    routing: RoutingResult
    cost: ReconfigCost
    placement: Optional[CombinedPlacementResult] = None

    def per_mode_wirelength(self) -> List[int]:
        return [
            self.routing.total_wirelength(m)
            for m in range(self.tunable.n_modes)
        ]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)

    def per_mode_sta(self, model=None) -> List["StaReport"]:
        """Routed critical path of every specialised mode.

        Default-model reports are cached like
        :meth:`MdrResult.per_mode_sta`'s.
        """
        if model is None:
            cached = getattr(self, "_sta_reports", None)
            if cached is not None:
                return cached
        from repro.timing.sta import (
            dcs_arc_delays,
            routed_critical_path,
        )

        reports = []
        for mode in range(self.tunable.n_modes):
            arcs = dcs_arc_delays(
                self.tunable, self.routing, mode, model
            )
            reports.append(
                routed_critical_path(
                    self.tunable.specialize(mode), arcs, model
                )
            )
        if model is None:
            self._sta_reports = reports
        return reports

    def per_mode_critical_delay(self, model=None) -> List[float]:
        return [r.critical_delay for r in self.per_mode_sta(model)]

    def per_mode_fmax(self, model=None) -> List[float]:
        """Per-mode max clock frequency inside the merged circuit."""
        return [r.frequency() for r in self.per_mode_sta(model)]


@dataclass
class MultiModeResult:
    """Both flows on one multi-mode circuit, on a shared architecture."""

    name: str
    arch: FpgaArchitecture
    mdr: MdrResult
    dcs: Dict[MergeStrategy, DcsResult]

    def speedup(self, strategy: MergeStrategy) -> float:
        """Fig. 5: reconfiguration speed-up of DCS over MDR."""
        return speedup(self.mdr.cost, self.dcs[strategy].cost)

    def wirelength_ratio(self, strategy: MergeStrategy) -> float:
        """Fig. 7: per-mode wires of DCS relative to MDR."""
        return (
            self.dcs[strategy].mean_wirelength()
            / self.mdr.mean_wirelength()
        )

    def timing(self, strategy: MergeStrategy, model=None):
        """Per-mode MDR vs DCS routed-timing comparison."""
        from repro.timing.sta import timing_comparison

        return timing_comparison(
            self.mdr.per_mode_sta(model),
            self.dcs[strategy].per_mode_sta(model),
        )

    def frequency_ratios(
        self, strategy: MergeStrategy, model=None
    ) -> Tuple[float, ...]:
        """Per-mode MDR:DCS Fmax ratios (the paper's speed claim).

        ``fmax_mdr / fmax_dcs`` per mode — equivalently the DCS:MDR
        critical-delay ratio; 1.0 means the merged implementation
        clocks as fast as the separate one, above 1.0 it is slower.
        """
        return self.timing(strategy, model).ratios()

    def mean_frequency_ratio(
        self, strategy: MergeStrategy, model=None
    ) -> float:
        return self.timing(strategy, model).mean_ratio


@dataclass
class PackedRouting:
    """A :class:`RoutingResult` with the RRG detached.

    The RRG is deterministic from the architecture, so cached and
    inter-process payloads carry only the routes and rebuild (or
    reattach) the graph on arrival — entries stay small and never pin
    a stale graph object.
    """

    routes: Dict[int, "ConnectionRoute"]
    n_modes: int
    iterations: int


def pack_routing(routing: RoutingResult) -> PackedRouting:
    return PackedRouting(
        routes=routing.routes,
        n_modes=routing.n_modes,
        iterations=routing.iterations,
    )


def restore_routing(
    packed: PackedRouting, rrg: RoutingResourceGraph
) -> RoutingResult:
    return RoutingResult(
        rrg=rrg,
        routes=packed.routes,
        n_modes=packed.n_modes,
        iterations=packed.iterations,
    )


def pack_result(result: "MultiModeResult") -> "MultiModeResult":
    """Detach every RRG reference for caching / IPC transport."""
    mdr = replace(
        result.mdr,
        implementations=[
            replace(impl, routing=pack_routing(impl.routing))
            for impl in result.mdr.implementations
        ],
    )
    dcs = {
        strategy: replace(d, routing=pack_routing(d.routing))
        for strategy, d in result.dcs.items()
    }
    return MultiModeResult(result.name, result.arch, mdr, dcs)


def unpack_result(packed: "MultiModeResult") -> "MultiModeResult":
    """Rebuild the RRG once and reattach it to every routing."""
    rrg = build_rrg(packed.arch)
    mdr = replace(
        packed.mdr,
        implementations=[
            replace(impl, routing=restore_routing(impl.routing, rrg))
            for impl in packed.mdr.implementations
        ],
    )
    dcs = {
        strategy: replace(d, routing=restore_routing(d.routing, rrg))
        for strategy, d in packed.dcs.items()
    }
    return MultiModeResult(packed.name, packed.arch, mdr, dcs)


def _stage_cache(cache_root: Optional[str],
                 cache_enabled: bool) -> StageCache:
    return StageCache(cache_root, enabled=cache_enabled)


def _lookahead_tables(
    cache: StageCache,
    rrg: RoutingResourceGraph,
    arch: FpgaArchitecture,
    options: FlowOptions,
):
    """The flow's lookahead tables, memoized per architecture.

    Returns ``None`` unless ``options.router_lookahead`` — callers
    thread the result straight into the routers' ``lookahead=``
    kwarg.  The build is a one-shot sweep over the (Δx, Δy, kind)
    quotient graph, so after the first flow on a given fabric every
    later run (any seed, net, or campaign variant) is a cache hit.
    """
    if not options.router_lookahead:
        return None
    from repro.route.lookahead import build_lookahead

    timing = options.criticality()
    model = timing.model if timing is not None else None
    tables, _hit = cache.memoize(
        "lookahead",
        lookahead_stage_inputs(arch, options),
        lambda: build_lookahead(rrg, model),
    )
    return tables


def _mdr_mode_stage(
    label: str,
    mode: int,
    circuit: LutCircuit,
    arch: FpgaArchitecture,
    options: FlowOptions,
    cache_root: Optional[str],
    cache_enabled: bool,
    rrg: Optional[RoutingResourceGraph] = None,
) -> Tuple[int, Placement, PackedRouting, List[StageRecord]]:
    """Place & route one MDR mode (scheduler task; runs in workers).

    Placement and routing are memoized independently, so a placement
    survives router-option changes and vice versa.
    """
    cache = _stage_cache(cache_root, cache_enabled)
    records: List[StageRecord] = []
    item = f"{label}/mode{mode}"
    timing = options.criticality()

    def compute_placement() -> Placement:
        return place_circuit(
            circuit,
            arch,
            seed=options.seed + mode,
            schedule=options.schedule(),
            timing=timing,
            batched=options.batched_placer,
        )

    # Keyed by exactly the inputs that reach place_circuit, so cached
    # placements survive changes to unrelated (e.g. router) options.
    (placement, place_hit), record = timed_call(
        "place", item, cache.memoize,
        "place",
        place_stage_inputs(circuit, arch, options, mode),
        compute_placement,
    )
    records.append(replace(record, cache_hit=place_hit))

    def compute_routing() -> PackedRouting:
        graph = rrg if rrg is not None else build_rrg(arch)
        return pack_routing(
            route_lut_circuit(
                circuit,
                placement,
                graph,
                timing=timing,
                max_iterations=options.router_max_iterations,
                batched=options.batched_router,
                lookahead=_lookahead_tables(
                    cache, graph, arch, options
                ),
                partial_ripup=options.partial_ripup,
            )
        )

    (packed, route_hit), record = timed_call(
        "route_lut", item, cache.memoize,
        "route_lut",
        route_lut_stage_inputs(circuit, placement, arch, options),
        compute_routing,
    )
    records.append(replace(record, cache_hit=route_hit))
    return mode, placement, packed, records


def _dcs_stage(
    label: str,
    name: str,
    strategy_value: str,
    mode_circuits: Tuple[LutCircuit, ...],
    arch: FpgaArchitecture,
    options: FlowOptions,
    cache_root: Optional[str],
    cache_enabled: bool,
    rrg: Optional[RoutingResourceGraph] = None,
) -> Tuple[str, DcsResult, List[StageRecord]]:
    """Merge + TPlace + TRoute for one strategy (scheduler task).

    The returned :class:`DcsResult` carries a :class:`PackedRouting`
    in place of its routing; the parent reattaches the RRG.
    """
    cache = _stage_cache(cache_root, cache_enabled)
    strategy = MergeStrategy(strategy_value)
    item = f"{label}/dcs-{strategy_value}"

    def compute() -> DcsResult:
        graph = rrg if rrg is not None else build_rrg(arch)
        result = _run_dcs(
            name, mode_circuits, arch, strategy, options, graph,
            lookahead=_lookahead_tables(cache, graph, arch, options),
        )
        return replace(result, routing=pack_routing(result.routing))

    # Keyed by the inputs the DCS pipeline actually consumes (merge,
    # TPlace, TRoute) rather than the whole options object.
    (packed, hit), record = timed_call(
        "dcs", item, cache.memoize, "dcs",
        dcs_stage_inputs(name, mode_circuits, arch, strategy, options),
        compute,
    )
    return strategy_value, packed, [replace(record, cache_hit=hit)]


def _run_dcs(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    strategy: MergeStrategy,
    options: FlowOptions,
    rrg: RoutingResourceGraph,
    lookahead=None,
) -> DcsResult:
    """The DCS flow proper: merge, (T)place, TRoute, bit accounting.

    With ``options.timing_driven`` the same criticality model steers
    every stage: the wire-length combined placement and the TPlace
    refinement anneal the criticality-weighted delay term, and TRoute
    prices connections by the worst criticality over their active
    modes (edge matching itself stays topology-only — the paper's
    criterion — so its timing pressure comes from TPlace).
    """
    n_modes = len(mode_circuits)
    timing = options.criticality()
    placement_result: Optional[CombinedPlacementResult] = None
    if strategy == MergeStrategy.BY_INDEX:
        tunable = merge_by_index(name, mode_circuits)
        tplace(
            tunable,
            arch,
            seed=options.seed,
            schedule=options.schedule(),
            randomize=True,
            timing=timing,
        )
    else:
        tunable, placement_result = merge_with_combined_placement(
            name,
            mode_circuits,
            arch,
            strategy=strategy,
            seed=options.seed,
            schedule=options.schedule(),
            timing=(
                timing
                if strategy == MergeStrategy.WIRE_LENGTH else None
            ),
        )
        if options.tplace_refine:
            tplace(
                tunable,
                arch,
                seed=options.seed,
                schedule=options.schedule(),
                timing=timing,
            )
    criticality = None
    if timing is not None:
        from repro.timing.criticality import (
            tunable_connection_criticalities,
        )

        criticality = tunable_connection_criticalities(
            tunable, rrg, timing
        )
    routing = route_tunable_circuit(
        rrg,
        tunable.site_connections(),
        n_modes,
        net_affinity=options.net_affinity,
        bit_affinity=options.bit_affinity,
        sharing_passes=options.sharing_passes,
        max_iterations=options.router_max_iterations,
        criticality=criticality,
        delay_model=timing.model if timing is not None else None,
        batched=options.batched_router,
        lookahead=lookahead,
        partial_ripup=options.partial_ripup,
    )
    per_mode_bits = [
        routing.bits_on(m) for m in range(n_modes)
    ]
    return DcsResult(
        arch=arch,
        strategy=strategy,
        tunable=tunable,
        routing=routing,
        cost=dcs_cost(arch, per_mode_bits),
        placement=placement_result,
    )


class MdrFlow:
    """Modular Dynamic Reconfiguration: implement each mode separately.

    Modes are independent synth→place→route runs, so they are submitted
    as one scheduler batch: serial when ``workers <= 1`` (bit-identical
    to the historical loop), fanned over a process pool otherwise.
    """

    def __init__(
        self,
        options: Optional[FlowOptions] = None,
        workers: Optional[int] = None,
        cache: Optional[StageCache] = None,
        progress: Optional[ProgressLog] = None,
    ) -> None:
        self.options = options or FlowOptions()
        self.workers = resolve_workers(workers)
        self.cache = cache or StageCache(enabled=False)
        self.progress = progress or ProgressLog()

    def run(
        self,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        rrg: Optional[RoutingResourceGraph] = None,
        label: str = "mdr",
    ) -> MdrResult:
        """Place & route every mode independently in the region."""
        rrg = rrg or build_rrg(arch)
        inline = (
            effective_workers(self.workers, len(mode_circuits)) <= 1
        )
        tasks = [
            Task(
                _mdr_mode_stage,
                (
                    label, mode, circuit, arch, self.options,
                    _cache_root_arg(self.cache), self.cache.enabled,
                    rrg if inline else None,
                ),
                name=f"{label}/mode{mode}",
            )
            for mode, circuit in enumerate(mode_circuits)
        ]
        outcomes = run_tasks(tasks, workers=self.workers)
        return _assemble_mdr(
            arch, rrg, outcomes, self.progress, mode_circuits
        )


def _cache_root_arg(cache: StageCache) -> Optional[str]:
    return str(cache.root) if cache.enabled else None


def _assemble_mdr(
    arch: FpgaArchitecture,
    rrg: RoutingResourceGraph,
    outcomes: Sequence[Tuple[int, Placement, PackedRouting,
                             List[StageRecord]]],
    progress: ProgressLog,
    mode_circuits: Sequence[LutCircuit],
) -> MdrResult:
    implementations = []
    for mode, placement, packed, records in outcomes:
        progress.extend(records)
        implementations.append(
            ModeImplementation(
                mode, placement, restore_routing(packed, rrg),
                circuit=mode_circuits[mode],
            )
        )
    implementations.sort(key=lambda impl: impl.mode)
    per_mode_bits = [impl.bits_on() for impl in implementations]
    return MdrResult(
        arch=arch,
        implementations=implementations,
        cost=mdr_cost(arch, rrg),
        diff=diff_cost(arch, per_mode_bits),
    )


class DcsFlow:
    """The paper's flow: merge + Dynamic Circuit Specialization."""

    def __init__(
        self,
        options: Optional[FlowOptions] = None,
        cache: Optional[StageCache] = None,
        progress: Optional[ProgressLog] = None,
    ) -> None:
        self.options = options or FlowOptions()
        self.cache = cache or StageCache(enabled=False)
        self.progress = progress or ProgressLog()

    def run(
        self,
        name: str,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
        rrg: Optional[RoutingResourceGraph] = None,
    ) -> DcsResult:
        """Combined placement, merge, TPlace, TRoute, bit accounting."""
        rrg = rrg or build_rrg(arch)
        _value, packed, records = _dcs_stage(
            name, name, strategy.value, tuple(mode_circuits), arch,
            self.options, _cache_root_arg(self.cache),
            self.cache.enabled, rrg,
        )
        self.progress.extend(records)
        return replace(
            packed, routing=restore_routing(packed.routing, rrg)
        )


def estimate_channel_width(
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    utilization: float = 0.55,
    slack: float = 1.2,
    floor: int = 6,
    ceiling: int = 48,
) -> int:
    """Estimate a routable channel width from netlist statistics.

    Average wiring demand per channel segment is approximated from the
    connection count and the mean Manhattan length of a random
    placement (~ one third of the grid semi-perimeter); the estimate is
    then inflated by ``1/utilization`` (peak-to-average) and the
    paper's 20% slack.
    """
    n_segments = max(1, arch.n_channel_segments())
    demand = 0.0
    for circuit in mode_circuits:
        n_conns = len(circuit.connections())
        mean_length = (arch.nx + arch.ny) / 6.0
        demand = max(demand, n_conns * mean_length)
    width = int(demand / n_segments / utilization * slack) + 1
    return max(floor, min(ceiling, width))


def implement_multi_mode(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    options: Optional[FlowOptions] = None,
    strategies: Sequence[MergeStrategy] = (
        MergeStrategy.EDGE_MATCHING,
        MergeStrategy.WIRE_LENGTH,
    ),
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
    progress: Optional[ProgressLog] = None,
) -> MultiModeResult:
    """Run MDR and DCS on a shared architecture; retry wider on failure.

    This is the experiment driver: one call per multi-mode circuit
    yields every quantity Figs. 5-7 need.

    The per-mode MDR runs and the per-strategy DCS runs are mutually
    independent, so they are submitted as *one* scheduler batch
    (``workers`` processes; ``<= 1`` = serial, bit-identical results).
    With a ``cache``, the whole result is memoized against the inputs
    — a warm rerun deserialises one entry — and on a miss every stage
    (placement, LUT routing, DCS merge+route) is memoized separately.
    """
    options = options or FlowOptions()
    cache = cache or StageCache(enabled=False)
    progress = progress or ProgressLog()
    workers = resolve_workers(workers)

    pair_key = None
    if cache.enabled:
        pair_key = cache.key(
            "multimode",
            *multimode_stage_inputs(
                name, tuple(mode_circuits), options,
                tuple(strategies),
            ),
        )
        hit, packed = cache.get("multimode", pair_key)
        if hit:
            progress.add(
                StageRecord("multimode", name, 0.0, cache_hit=True)
            )
            return unpack_result(packed)

    n_blocks = max(c.n_luts() for c in mode_circuits)
    io_names = set()
    for circuit in mode_circuits:
        io_names.update(circuit.inputs)
        io_names.update(circuit.outputs)

    arch = size_for_circuits(
        n_blocks,
        len(io_names),
        k=options.k,
        channel_width=options.channel_width or 8,
        slack=options.slack,
        io_rat=options.io_rat,
        fc_in=options.fc_in,
        fc_out=options.fc_out,
    )
    if options.channel_width is not None:
        width = options.channel_width
    elif options.sizing == "search":
        from repro.arch.sizing import paper_channel_width

        width = paper_channel_width(
            mode_circuits,
            arch,
            slack=options.slack,
            seed=options.seed,
            schedule=options.schedule(),
            router_max_iterations=options.router_max_iterations,
        )
    elif options.sizing == "estimate":
        width = estimate_channel_width(mode_circuits, arch)
    else:
        raise ValueError(
            f"unknown sizing {options.sizing!r} "
            "(use 'estimate' or 'search')"
        )

    cache_root = _cache_root_arg(cache)
    last_error: Optional[Exception] = None
    for _attempt in range(options.max_width_retries):
        arch = FpgaArchitecture(
            nx=arch.nx,
            ny=arch.ny,
            k=arch.k,
            channel_width=width,
            fc_in=arch.fc_in,
            fc_out=arch.fc_out,
            io_rat=arch.io_rat,
        )
        # Serial/inline execution routes everything over one shared
        # graph; pool workers rebuild it locally instead of
        # deserialising it.
        n_tasks = len(mode_circuits) + len(strategies)
        serial = effective_workers(workers, n_tasks) <= 1
        rrg = build_rrg(arch)
        shipped_rrg = rrg if serial else None
        tasks = [
            Task(
                _mdr_mode_stage,
                (
                    name, mode, circuit, arch, options,
                    cache_root, cache.enabled, shipped_rrg,
                ),
                name=f"{name}/mode{mode}",
            )
            for mode, circuit in enumerate(mode_circuits)
        ]
        tasks += [
            Task(
                _dcs_stage,
                (
                    name, name, strategy.value, tuple(mode_circuits),
                    arch, options, cache_root, cache.enabled,
                    shipped_rrg,
                ),
                name=f"{name}/dcs-{strategy.value}",
            )
            for strategy in strategies
        ]
        try:
            outcomes = run_tasks(tasks, workers=workers)
        except RoutingError as error:
            last_error = error
            width = max(width + 2, int(width * 1.25))
            continue
        n_modes = len(mode_circuits)
        mdr = _assemble_mdr(
            arch, rrg, outcomes[:n_modes], progress, mode_circuits
        )
        dcs: Dict[MergeStrategy, DcsResult] = {}
        for value, packed_dcs, records in outcomes[n_modes:]:
            progress.extend(records)
            dcs[MergeStrategy(value)] = replace(
                packed_dcs,
                routing=restore_routing(packed_dcs.routing, rrg),
            )
        result = MultiModeResult(name, arch, mdr, dcs)
        if pair_key is not None:
            cache.put("multimode", pair_key, pack_result(result))
        return result
    raise RoutingError(
        f"{name}: unroutable even at channel width {width}: "
        f"{last_error}"
    )
