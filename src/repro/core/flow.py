"""End-to-end tool flows: MDR baseline and the paper's DCS flow.

``MdrFlow`` implements Fig. 2(a): every mode is placed and routed
separately in the same reconfigurable region; a mode switch rewrites
the whole region.

``DcsFlow`` implements Fig. 2(b): the per-mode LUT circuits are merged
into one Tunable circuit via combined placement (edge-matching or
wire-length cost), optionally refined by TPlace, and routed by TRoute;
a mode switch rewrites the LUT bits plus only the parameterised routing
bits.

``implement_multi_mode`` drives both flows on a shared architecture
(same grid, same channel width) so their bit counts are comparable, and
retries with a wider channel when routing fails — mirroring the paper's
"20% bigger than minimum" sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.architecture import FpgaArchitecture, size_for_circuits
from repro.arch.rrg import RoutingResourceGraph, build_rrg
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog, StageRecord, timed_call
from repro.exec.scheduler import Scheduler, Task
from repro.core.combined_placement import (
    CombinedPlacementResult,
    merge_with_combined_placement,
    tplace,
)
from repro.core.merge import MergeStrategy, merge_by_index
from repro.core.reconfig import (
    ReconfigCost,
    dcs_cost,
    diff_cost,
    mdr_cost,
    speedup,
)
from repro.core.tunable import TunableCircuit
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import Placement, place_circuit
from repro.route.router import RoutingError, RoutingResult
from repro.route.troute import (
    route_lut_circuit,
    route_tunable_circuit,
)


@dataclass
class FlowOptions:
    """Knobs shared by both flows.

    ``channel_width=None`` lets the driver estimate a width from
    placement wire-length and grow it on routing failure; a fixed value
    reproduces a specific experiment exactly.
    """

    seed: int = 0
    k: int = 4
    slack: float = 1.2
    io_rat: int = 2
    fc_in: float = 0.5
    fc_out: float = 0.5
    channel_width: Optional[int] = None
    inner_num: float = 1.0
    tplace_refine: bool = True
    max_width_retries: int = 5
    router_max_iterations: int = 40
    #: Cross-mode wire-affinity of TRoute (< 1 steers a net's per-mode
    #: branches onto shared wires; 1.0 disables the bias).
    net_affinity: float = 0.5
    #: Cross-mode switch-bit affinity of TRoute (< 1 steers connections
    #: onto switches already on in the other modes, turning their bits
    #: static; 1.0 disables the bias).
    bit_affinity: float = 0.3
    #: Extra TRoute sweeps after congestion is resolved that reroute
    #: every net with the sharing discounts active, keeping the legal
    #: result with the fewest parameterised bits.  Sweeps stop early
    #: when a sweep no longer improves.
    sharing_passes: int = 3
    #: Channel sizing when ``channel_width`` is None: ``"estimate"``
    #: derives a width from netlist statistics and grows it on routing
    #: failure; ``"search"`` runs the paper's methodology exactly — a
    #: binary search for the minimum routable width plus 20% slack
    #: (slower: several trial routings).
    sizing: str = "estimate"

    def schedule(self) -> AnnealingSchedule:
        return AnnealingSchedule(inner_num=self.inner_num)


@dataclass
class ModeImplementation:
    """One mode's separate (MDR) implementation."""

    mode: int
    placement: Placement
    routing: RoutingResult

    def bits_on(self) -> Set[int]:
        return self.routing.bits_on(0)

    def wirelength(self) -> int:
        return self.routing.total_wirelength(0)


@dataclass
class MdrResult:
    """Outcome of the MDR flow on one multi-mode circuit."""

    arch: FpgaArchitecture
    implementations: List[ModeImplementation]
    cost: ReconfigCost
    diff: ReconfigCost

    def per_mode_wirelength(self) -> List[int]:
        return [impl.wirelength() for impl in self.implementations]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)


@dataclass
class DcsResult:
    """Outcome of the DCS flow with one merge strategy."""

    arch: FpgaArchitecture
    strategy: MergeStrategy
    tunable: TunableCircuit
    routing: RoutingResult
    cost: ReconfigCost
    placement: Optional[CombinedPlacementResult] = None

    def per_mode_wirelength(self) -> List[int]:
        return [
            self.routing.total_wirelength(m)
            for m in range(self.tunable.n_modes)
        ]

    def mean_wirelength(self) -> float:
        wl = self.per_mode_wirelength()
        return sum(wl) / len(wl)


@dataclass
class MultiModeResult:
    """Both flows on one multi-mode circuit, on a shared architecture."""

    name: str
    arch: FpgaArchitecture
    mdr: MdrResult
    dcs: Dict[MergeStrategy, DcsResult]

    def speedup(self, strategy: MergeStrategy) -> float:
        """Fig. 5: reconfiguration speed-up of DCS over MDR."""
        return speedup(self.mdr.cost, self.dcs[strategy].cost)

    def wirelength_ratio(self, strategy: MergeStrategy) -> float:
        """Fig. 7: per-mode wires of DCS relative to MDR."""
        return (
            self.dcs[strategy].mean_wirelength()
            / self.mdr.mean_wirelength()
        )


@dataclass
class PackedRouting:
    """A :class:`RoutingResult` with the RRG detached.

    The RRG is deterministic from the architecture, so cached and
    inter-process payloads carry only the routes and rebuild (or
    reattach) the graph on arrival — entries stay small and never pin
    a stale graph object.
    """

    routes: Dict[int, "ConnectionRoute"]
    n_modes: int
    iterations: int


def pack_routing(routing: RoutingResult) -> PackedRouting:
    return PackedRouting(
        routes=routing.routes,
        n_modes=routing.n_modes,
        iterations=routing.iterations,
    )


def restore_routing(
    packed: PackedRouting, rrg: RoutingResourceGraph
) -> RoutingResult:
    return RoutingResult(
        rrg=rrg,
        routes=packed.routes,
        n_modes=packed.n_modes,
        iterations=packed.iterations,
    )


def pack_result(result: "MultiModeResult") -> "MultiModeResult":
    """Detach every RRG reference for caching / IPC transport."""
    mdr = replace(
        result.mdr,
        implementations=[
            replace(impl, routing=pack_routing(impl.routing))
            for impl in result.mdr.implementations
        ],
    )
    dcs = {
        strategy: replace(d, routing=pack_routing(d.routing))
        for strategy, d in result.dcs.items()
    }
    return MultiModeResult(result.name, result.arch, mdr, dcs)


def unpack_result(packed: "MultiModeResult") -> "MultiModeResult":
    """Rebuild the RRG once and reattach it to every routing."""
    rrg = build_rrg(packed.arch)
    mdr = replace(
        packed.mdr,
        implementations=[
            replace(impl, routing=restore_routing(impl.routing, rrg))
            for impl in packed.mdr.implementations
        ],
    )
    dcs = {
        strategy: replace(d, routing=restore_routing(d.routing, rrg))
        for strategy, d in packed.dcs.items()
    }
    return MultiModeResult(packed.name, packed.arch, mdr, dcs)


def _stage_cache(cache_root: Optional[str],
                 cache_enabled: bool) -> StageCache:
    return StageCache(cache_root, enabled=cache_enabled)


def _mdr_mode_stage(
    label: str,
    mode: int,
    circuit: LutCircuit,
    arch: FpgaArchitecture,
    options: FlowOptions,
    cache_root: Optional[str],
    cache_enabled: bool,
    rrg: Optional[RoutingResourceGraph] = None,
) -> Tuple[int, Placement, PackedRouting, List[StageRecord]]:
    """Place & route one MDR mode (scheduler task; runs in workers).

    Placement and routing are memoized independently, so a placement
    survives router-option changes and vice versa.
    """
    cache = _stage_cache(cache_root, cache_enabled)
    records: List[StageRecord] = []
    item = f"{label}/mode{mode}"

    def compute_placement() -> Placement:
        return place_circuit(
            circuit,
            arch,
            seed=options.seed + mode,
            schedule=options.schedule(),
        )

    # Keyed by exactly the inputs that reach place_circuit, so cached
    # placements survive changes to unrelated (e.g. router) options.
    (placement, place_hit), record = timed_call(
        "place", item, cache.memoize,
        "place",
        (circuit, arch, options.seed + mode, options.schedule()),
        compute_placement,
    )
    records.append(replace(record, cache_hit=place_hit))

    def compute_routing() -> PackedRouting:
        graph = rrg if rrg is not None else build_rrg(arch)
        return pack_routing(
            route_lut_circuit(
                circuit,
                placement,
                graph,
                max_iterations=options.router_max_iterations,
            )
        )

    (packed, route_hit), record = timed_call(
        "route_lut", item, cache.memoize,
        "route_lut",
        (circuit, placement, arch, options.router_max_iterations),
        compute_routing,
    )
    records.append(replace(record, cache_hit=route_hit))
    return mode, placement, packed, records


def _dcs_stage(
    label: str,
    name: str,
    strategy_value: str,
    mode_circuits: Tuple[LutCircuit, ...],
    arch: FpgaArchitecture,
    options: FlowOptions,
    cache_root: Optional[str],
    cache_enabled: bool,
    rrg: Optional[RoutingResourceGraph] = None,
) -> Tuple[str, DcsResult, List[StageRecord]]:
    """Merge + TPlace + TRoute for one strategy (scheduler task).

    The returned :class:`DcsResult` carries a :class:`PackedRouting`
    in place of its routing; the parent reattaches the RRG.
    """
    cache = _stage_cache(cache_root, cache_enabled)
    strategy = MergeStrategy(strategy_value)
    item = f"{label}/dcs-{strategy_value}"

    def compute() -> DcsResult:
        graph = rrg if rrg is not None else build_rrg(arch)
        result = _run_dcs(
            name, mode_circuits, arch, strategy, options, graph
        )
        return replace(result, routing=pack_routing(result.routing))

    # Keyed by the inputs the DCS pipeline actually consumes (merge,
    # TPlace, TRoute) rather than the whole options object.
    dcs_inputs = (
        name, mode_circuits, arch, strategy,
        options.seed, options.schedule(), options.tplace_refine,
        options.net_affinity, options.bit_affinity,
        options.sharing_passes, options.router_max_iterations,
    )
    (packed, hit), record = timed_call(
        "dcs", item, cache.memoize, "dcs", dcs_inputs, compute,
    )
    return strategy_value, packed, [replace(record, cache_hit=hit)]


def _run_dcs(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    strategy: MergeStrategy,
    options: FlowOptions,
    rrg: RoutingResourceGraph,
) -> DcsResult:
    """The DCS flow proper: merge, (T)place, TRoute, bit accounting."""
    n_modes = len(mode_circuits)
    placement_result: Optional[CombinedPlacementResult] = None
    if strategy == MergeStrategy.BY_INDEX:
        tunable = merge_by_index(name, mode_circuits)
        tplace(
            tunable,
            arch,
            seed=options.seed,
            schedule=options.schedule(),
            randomize=True,
        )
    else:
        tunable, placement_result = merge_with_combined_placement(
            name,
            mode_circuits,
            arch,
            strategy=strategy,
            seed=options.seed,
            schedule=options.schedule(),
        )
        if options.tplace_refine:
            tplace(
                tunable,
                arch,
                seed=options.seed,
                schedule=options.schedule(),
            )
    routing = route_tunable_circuit(
        rrg,
        tunable.site_connections(),
        n_modes,
        net_affinity=options.net_affinity,
        bit_affinity=options.bit_affinity,
        sharing_passes=options.sharing_passes,
        max_iterations=options.router_max_iterations,
    )
    per_mode_bits = [
        routing.bits_on(m) for m in range(n_modes)
    ]
    return DcsResult(
        arch=arch,
        strategy=strategy,
        tunable=tunable,
        routing=routing,
        cost=dcs_cost(arch, per_mode_bits),
        placement=placement_result,
    )


class MdrFlow:
    """Modular Dynamic Reconfiguration: implement each mode separately.

    Modes are independent synth→place→route runs, so they are submitted
    as one scheduler batch: serial when ``workers <= 1`` (bit-identical
    to the historical loop), fanned over a process pool otherwise.
    """

    def __init__(
        self,
        options: Optional[FlowOptions] = None,
        workers: Optional[int] = None,
        cache: Optional[StageCache] = None,
        progress: Optional[ProgressLog] = None,
    ) -> None:
        self.options = options or FlowOptions()
        self.scheduler = Scheduler(workers)
        self.cache = cache or StageCache(enabled=False)
        self.progress = progress or ProgressLog()

    def run(
        self,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        rrg: Optional[RoutingResourceGraph] = None,
        label: str = "mdr",
    ) -> MdrResult:
        """Place & route every mode independently in the region."""
        rrg = rrg or build_rrg(arch)
        inline = (
            self.scheduler.effective_workers(len(mode_circuits)) <= 1
        )
        tasks = [
            Task(
                _mdr_mode_stage,
                (
                    label, mode, circuit, arch, self.options,
                    _cache_root_arg(self.cache), self.cache.enabled,
                    rrg if inline else None,
                ),
                name=f"{label}/mode{mode}",
            )
            for mode, circuit in enumerate(mode_circuits)
        ]
        outcomes = self.scheduler.run(tasks)
        return _assemble_mdr(arch, rrg, outcomes, self.progress)


def _cache_root_arg(cache: StageCache) -> Optional[str]:
    return str(cache.root) if cache.enabled else None


def _assemble_mdr(
    arch: FpgaArchitecture,
    rrg: RoutingResourceGraph,
    outcomes: Sequence[Tuple[int, Placement, PackedRouting,
                             List[StageRecord]]],
    progress: ProgressLog,
) -> MdrResult:
    implementations = []
    for mode, placement, packed, records in outcomes:
        progress.extend(records)
        implementations.append(
            ModeImplementation(
                mode, placement, restore_routing(packed, rrg)
            )
        )
    implementations.sort(key=lambda impl: impl.mode)
    per_mode_bits = [impl.bits_on() for impl in implementations]
    return MdrResult(
        arch=arch,
        implementations=implementations,
        cost=mdr_cost(arch, rrg),
        diff=diff_cost(arch, per_mode_bits),
    )


class DcsFlow:
    """The paper's flow: merge + Dynamic Circuit Specialization."""

    def __init__(
        self,
        options: Optional[FlowOptions] = None,
        cache: Optional[StageCache] = None,
        progress: Optional[ProgressLog] = None,
    ) -> None:
        self.options = options or FlowOptions()
        self.cache = cache or StageCache(enabled=False)
        self.progress = progress or ProgressLog()

    def run(
        self,
        name: str,
        mode_circuits: Sequence[LutCircuit],
        arch: FpgaArchitecture,
        strategy: MergeStrategy = MergeStrategy.WIRE_LENGTH,
        rrg: Optional[RoutingResourceGraph] = None,
    ) -> DcsResult:
        """Combined placement, merge, TPlace, TRoute, bit accounting."""
        rrg = rrg or build_rrg(arch)
        _value, packed, records = _dcs_stage(
            name, name, strategy.value, tuple(mode_circuits), arch,
            self.options, _cache_root_arg(self.cache),
            self.cache.enabled, rrg,
        )
        self.progress.extend(records)
        return replace(
            packed, routing=restore_routing(packed.routing, rrg)
        )


def estimate_channel_width(
    mode_circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    utilization: float = 0.55,
    slack: float = 1.2,
    floor: int = 6,
    ceiling: int = 48,
) -> int:
    """Estimate a routable channel width from netlist statistics.

    Average wiring demand per channel segment is approximated from the
    connection count and the mean Manhattan length of a random
    placement (~ one third of the grid semi-perimeter); the estimate is
    then inflated by ``1/utilization`` (peak-to-average) and the
    paper's 20% slack.
    """
    n_segments = max(1, arch.n_channel_segments())
    demand = 0.0
    for circuit in mode_circuits:
        n_conns = len(circuit.connections())
        mean_length = (arch.nx + arch.ny) / 6.0
        demand = max(demand, n_conns * mean_length)
    width = int(demand / n_segments / utilization * slack) + 1
    return max(floor, min(ceiling, width))


def implement_multi_mode(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    options: Optional[FlowOptions] = None,
    strategies: Sequence[MergeStrategy] = (
        MergeStrategy.EDGE_MATCHING,
        MergeStrategy.WIRE_LENGTH,
    ),
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
    progress: Optional[ProgressLog] = None,
) -> MultiModeResult:
    """Run MDR and DCS on a shared architecture; retry wider on failure.

    This is the experiment driver: one call per multi-mode circuit
    yields every quantity Figs. 5-7 need.

    The per-mode MDR runs and the per-strategy DCS runs are mutually
    independent, so they are submitted as *one* scheduler batch
    (``workers`` processes; ``<= 1`` = serial, bit-identical results).
    With a ``cache``, the whole result is memoized against the inputs
    — a warm rerun deserialises one entry — and on a miss every stage
    (placement, LUT routing, DCS merge+route) is memoized separately.
    """
    options = options or FlowOptions()
    cache = cache or StageCache(enabled=False)
    progress = progress or ProgressLog()
    scheduler = Scheduler(workers)

    pair_key = None
    if cache.enabled:
        pair_key = cache.key(
            "multimode", name, tuple(mode_circuits), options,
            tuple(strategies),
        )
        hit, packed = cache.get("multimode", pair_key)
        if hit:
            progress.add(
                StageRecord("multimode", name, 0.0, cache_hit=True)
            )
            return unpack_result(packed)

    n_blocks = max(c.n_luts() for c in mode_circuits)
    io_names = set()
    for circuit in mode_circuits:
        io_names.update(circuit.inputs)
        io_names.update(circuit.outputs)

    arch = size_for_circuits(
        n_blocks,
        len(io_names),
        k=options.k,
        channel_width=options.channel_width or 8,
        slack=options.slack,
        io_rat=options.io_rat,
        fc_in=options.fc_in,
        fc_out=options.fc_out,
    )
    if options.channel_width is not None:
        width = options.channel_width
    elif options.sizing == "search":
        from repro.arch.sizing import paper_channel_width

        width = paper_channel_width(
            mode_circuits,
            arch,
            slack=options.slack,
            seed=options.seed,
            schedule=options.schedule(),
            router_max_iterations=options.router_max_iterations,
        )
    elif options.sizing == "estimate":
        width = estimate_channel_width(mode_circuits, arch)
    else:
        raise ValueError(
            f"unknown sizing {options.sizing!r} "
            f"(use 'estimate' or 'search')"
        )

    cache_root = _cache_root_arg(cache)
    last_error: Optional[Exception] = None
    for _attempt in range(options.max_width_retries):
        arch = FpgaArchitecture(
            nx=arch.nx,
            ny=arch.ny,
            k=arch.k,
            channel_width=width,
            fc_in=arch.fc_in,
            fc_out=arch.fc_out,
            io_rat=arch.io_rat,
        )
        # Serial/inline execution routes everything over one shared
        # graph; pool workers rebuild it locally instead of
        # deserialising it.
        n_tasks = len(mode_circuits) + len(strategies)
        serial = scheduler.effective_workers(n_tasks) <= 1
        rrg = build_rrg(arch)
        shipped_rrg = rrg if serial else None
        tasks = [
            Task(
                _mdr_mode_stage,
                (
                    name, mode, circuit, arch, options,
                    cache_root, cache.enabled, shipped_rrg,
                ),
                name=f"{name}/mode{mode}",
            )
            for mode, circuit in enumerate(mode_circuits)
        ]
        tasks += [
            Task(
                _dcs_stage,
                (
                    name, name, strategy.value, tuple(mode_circuits),
                    arch, options, cache_root, cache.enabled,
                    shipped_rrg,
                ),
                name=f"{name}/dcs-{strategy.value}",
            )
            for strategy in strategies
        ]
        try:
            outcomes = scheduler.run(tasks)
        except RoutingError as error:
            last_error = error
            width = max(width + 2, int(width * 1.25))
            continue
        n_modes = len(mode_circuits)
        mdr = _assemble_mdr(arch, rrg, outcomes[:n_modes], progress)
        dcs: Dict[MergeStrategy, DcsResult] = {}
        for value, packed_dcs, records in outcomes[n_modes:]:
            progress.extend(records)
            dcs[MergeStrategy(value)] = replace(
                packed_dcs,
                routing=restore_routing(packed_dcs.routing, rrg),
            )
        result = MultiModeResult(name, arch, mdr, dcs)
        if pair_key is not None:
            cache.put("multimode", pair_key, pack_result(result))
        return result
    raise RoutingError(
        f"{name}: unroutable even at channel width {width}: "
        f"{last_error}"
    )
