"""Activation functions of Tunable connections.

An activation function is a Boolean function of the mode bits that
tells in which modes a tunable connection must be realised (paper
Section II-B).  Because the flow enumerates modes explicitly, the
canonical internal representation is simply the *set of active modes*;
rendering to a minimised mode-bit expression is delegated to the
Quine-McCluskey minimiser via :class:`~repro.core.modes.ModeEncoding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator

from repro.core.modes import ModeEncoding


@dataclass(frozen=True)
class ActivationFunction:
    """The set of modes in which a tunable connection is active."""

    modes: FrozenSet[int]
    n_modes: int

    def __post_init__(self) -> None:
        if not self.modes:
            raise ValueError("activation function must cover >= 1 mode")
        if max(self.modes) >= self.n_modes or min(self.modes) < 0:
            raise ValueError("active mode out of range")

    @classmethod
    def of(cls, modes: Iterable[int], n_modes: int
           ) -> "ActivationFunction":
        return cls(frozenset(modes), n_modes)

    @classmethod
    def single(cls, mode: int, n_modes: int) -> "ActivationFunction":
        """Activation of an unshared connection (one mode only)."""
        return cls(frozenset((mode,)), n_modes)

    @classmethod
    def always(cls, n_modes: int) -> "ActivationFunction":
        """Activation of a connection shared by every mode."""
        return cls(frozenset(range(n_modes)), n_modes)

    # -- algebra -----------------------------------------------------------

    def __or__(self, other: "ActivationFunction") -> "ActivationFunction":
        """Merging two connections ORs their activation functions."""
        if self.n_modes != other.n_modes:
            raise ValueError("mode counts differ")
        return ActivationFunction(self.modes | other.modes, self.n_modes)

    def is_always(self) -> bool:
        """True when the connection is active in every mode.

        Such connections need no parameterised routing bits: the
        switches along them hold the same value in all modes.
        """
        return len(self.modes) == self.n_modes

    def is_active(self, mode: int) -> bool:
        return mode in self.modes

    def __contains__(self, mode: int) -> bool:
        return mode in self.modes

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.modes))

    def __len__(self) -> int:
        return len(self.modes)

    def expression(self, encoding: ModeEncoding = None) -> str:
        """Minimised mode-bit expression, e.g. ``m0`` or ``1``."""
        encoding = encoding or ModeEncoding(self.n_modes)
        if encoding.n_modes != self.n_modes:
            raise ValueError("encoding does not match n_modes")
        return encoding.expression(self.modes)

    def __str__(self) -> str:
        return self.expression()
