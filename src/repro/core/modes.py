"""Mode numbering and Boolean products over mode bits.

Paper Section III: "We first assume the mode circuits are numbered and
express this number in a binary fashion.  If there are for example 3
modes, we will need 2 bits m1m0 to express the mode."  Every mode then
corresponds to a Boolean product of the mode bits that evaluates to
True exactly for that mode's number (e.g. mode ``10`` -> ``m1.~m0``).

Beyond the paper's binary numbering, two alternative mode-register
encodings are provided (they change the rendered Boolean expressions
and the mode-register write on a switch, not the parameterised-bit
counts, which depend only on per-mode on/off sets):

* ``gray`` — consecutive mode numbers differ in one register bit, so
  cycling through modes flips a single mode-register bit per switch;
* ``onehot`` — one register bit per mode; every activation product is
  a single literal, which makes the reconfiguration manager's Boolean
  evaluation trivial at the cost of a wider register.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.utils.qm import (
    evaluate_terms,
    expression_to_string,
    minimize_boolean,
    term_to_string,
)

#: Supported mode-register encodings.
ENCODING_STYLES = ("binary", "gray", "onehot")

#: Above this mode count the one-hot don't-care set (``2**n - n``
#: codes) is too large to enumerate for minimisation; expressions fall
#: back to exact covers, which are single literals anyway.
_ONEHOT_DC_LIMIT = 12


def gray_code(index: int) -> int:
    """The *index*-th Gray code."""
    return index ^ (index >> 1)


@dataclass(frozen=True)
class ModeEncoding:
    """Encoding of *n_modes* mode circuits into a mode register."""

    n_modes: int
    style: str = "binary"

    def __post_init__(self) -> None:
        if self.n_modes < 1:
            raise ValueError("need at least one mode")
        if self.style not in ENCODING_STYLES:
            raise ValueError(
                f"style must be one of {ENCODING_STYLES}"
            )

    @property
    def n_bits(self) -> int:
        """Mode-register width.

        ``ceil(log2(n_modes))`` (min 1) for binary and Gray; one bit
        per mode for one-hot.
        """
        if self.style == "onehot":
            return self.n_modes
        return max(1, math.ceil(math.log2(self.n_modes)))

    def code(self, mode: int) -> int:
        """Mode-register value selecting *mode*."""
        self._check(mode)
        if self.style == "binary":
            return mode
        if self.style == "gray":
            return gray_code(mode)
        return 1 << mode

    def bit_names(self) -> List[str]:
        """Mode-bit names, index 0 = LSB = ``m0``."""
        return [f"m{i}" for i in range(self.n_bits)]

    def mode_product(self, mode: int) -> str:
        """The Boolean product selecting *mode*, e.g. ``m1.~m0``."""
        return term_to_string((self.code(mode), 0), self.n_bits)

    def used_codes(self) -> List[int]:
        """Register values that select a mode, in mode order."""
        return [self.code(m) for m in range(self.n_modes)]

    def unused_codes(self) -> List[int]:
        """Bit patterns that encode no mode (don't-cares)."""
        used = set(self.used_codes())
        return [
            c for c in range(1 << self.n_bits) if c not in used
        ]

    def expression(self, modes: Iterable[int]) -> str:
        """Minimised sum-of-products that is True exactly on *modes*.

        Unused codes are exploited as don't-cares, so with 2 modes the
        set ``{0, 1}`` renders as constant ``1`` and ``{1}`` as ``m0``
        (paper Fig. 3: ``~m0 + m0`` simplifies to True).
        """
        mode_list = sorted(set(modes))
        for mode in mode_list:
            self._check(mode)
        if not mode_list:
            return "0"
        if len(mode_list) == self.n_modes:
            return "1"
        on_set = [self.code(m) for m in mode_list]
        if self.style == "onehot" and self.n_modes > _ONEHOT_DC_LIMIT:
            dc: List[int] = []
        else:
            dc = self.unused_codes()
        terms = minimize_boolean(on_set + dc, self.n_bits)
        # Terms may now cover unused codes; that is fine (don't-care),
        # but the rendering must still reject other used modes — the
        # QM cover guarantees it because used off-set codes were not in
        # the on-set and QM covers are exact on cared-for points only
        # when don't-cares are chosen. Verify defensively:
        for mode in range(self.n_modes):
            want = mode in mode_list
            if evaluate_terms(terms, self.code(mode)) != want:
                # Fall back to the exact (un-simplified) cover.
                terms = minimize_boolean(on_set, self.n_bits)
                break
        return expression_to_string(terms, self.n_bits)

    def evaluate_product(self, mode: int, assignment: int) -> bool:
        """Evaluate *mode*'s product at a mode-register value."""
        return assignment == self.code(mode)

    def register_hamming(self, from_mode: int, to_mode: int) -> int:
        """Mode-register bits flipped when switching modes."""
        return bin(self.code(from_mode) ^ self.code(to_mode)).count(
            "1"
        )

    def _check(self, mode: int) -> None:
        if not 0 <= mode < self.n_modes:
            raise ValueError(
                f"mode {mode} out of range (n_modes={self.n_modes})"
            )
