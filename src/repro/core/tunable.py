"""Tunable circuits: Tunable LUTs and Tunable connections.

A *Tunable circuit* (paper Section II-B, Figs. 3 and 4) is a network of
Tunable LUTs — logic blocks whose configuration bits are Boolean
functions of the mode bits — connected by Tunable connections, each
annotated with an activation function.

A Tunable LUT implements one (or no) ordinary LUT per mode.  Its
parameterised truth-table bits are generated exactly as in Fig. 4: each
member LUT's bits are ANDed with the Boolean product of its mode and
the per-row results are ORed together.  Internally that reduces to: bit
*r* of the Tunable LUT is *on in mode m* iff the member of mode *m* has
bit *r* set; rendering as a mode-bit expression goes through the
Quine-McCluskey minimiser.

Because member LUTs of the same Tunable LUT may have different arity
and different input order, every member is first *aligned* to the full
K-input physical LUT (unused inputs padded; the function is independent
of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.arch.architecture import Site
from repro.core.activation import ActivationFunction
from repro.core.modes import ModeEncoding
from repro.netlist.lutcircuit import LutBlock, LutCircuit
from repro.netlist.truthtable import TruthTable


@dataclass
class TunableLut:
    """One Tunable LUT: at most one member LUT per mode.

    ``members`` maps a mode index to the member block of that mode.
    ``site`` is the physical logic-block tile the Tunable LUT occupies
    (combined placement decides it; merging by index leaves it None
    until TPlace runs).
    """

    name: str
    k: int
    n_modes: int
    members: Dict[int, LutBlock] = field(default_factory=dict)
    site: Optional[Site] = None

    def add_member(self, mode: int, block: LutBlock) -> None:
        """Attach mode *mode*'s LUT to this Tunable LUT."""
        if not 0 <= mode < self.n_modes:
            raise ValueError(f"mode {mode} out of range")
        if mode in self.members:
            raise ValueError(
                f"tunable LUT {self.name}: mode {mode} already has a "
                f"member ({self.members[mode].name})"
            )
        if len(block.inputs) > self.k:
            raise ValueError(
                f"member {block.name} has more than k={self.k} inputs"
            )
        self.members[mode] = block

    def aligned_table(self, mode: int) -> TruthTable:
        """Member table of *mode* expanded to the full K inputs.

        Input *i* of the member maps to physical pin *i*; the expanded
        function ignores the padded pins.  Unoccupied modes configure
        the all-zero LUT (the fabric default).
        """
        block = self.members.get(mode)
        if block is None:
            return TruthTable.const(False, self.k)
        return block.table.expand(
            list(range(len(block.inputs))), self.k
        )

    def bit_modes(self) -> List[FrozenSet[int]]:
        """For each of the ``2**k`` truth-table rows (plus the
        register-select bit as the last entry), the set of modes in
        which the bit is 1.

        This is the Fig. 4 construction: row *r*'s Boolean expression
        is the OR over modes of (mode product AND member bit value),
        i.e. exactly "on in the modes whose member has the bit set".
        """
        rows: List[Set[int]] = [set() for _ in range(1 << self.k)]
        select: Set[int] = set()
        for mode, block in self.members.items():
            table = self.aligned_table(mode)
            for r in range(1 << self.k):
                if table.evaluate_index(r):
                    rows[r].add(mode)
            if block.registered:
                select.add(mode)
        return [frozenset(r) for r in rows] + [frozenset(select)]

    def bit_expressions(
        self, encoding: Optional[ModeEncoding] = None
    ) -> List[str]:
        """Mode-bit expressions of every configuration bit (Fig. 4)."""
        encoding = encoding or ModeEncoding(self.n_modes)
        return [
            encoding.expression(modes) for modes in self.bit_modes()
        ]

    def n_parameterized_bits(self) -> int:
        """Bits that actually vary with the mode."""
        count = 0
        for modes in self.bit_modes():
            if 0 < len(modes) < self.n_modes:
                count += 1
        return count

    def specialize(self, mode: int) -> Tuple[int, bool]:
        """(truth-table bit mask, registered flag) realised in *mode*.

        Evaluating every parameterised bit at the mode value recovers
        the member LUT's configuration — the correctness property of
        Fig. 4.
        """
        bits = 0
        bit_modes = self.bit_modes()
        for r in range(1 << self.k):
            if mode in bit_modes[r]:
                bits |= 1 << r
        registered = mode in bit_modes[-1]
        return bits, registered


@dataclass(frozen=True)
class TunableConnection:
    """A merged connection with its activation function.

    ``source`` / ``sink`` name tunable cells (Tunable LUTs or tunable
    IO pads).  Connections of different modes with the same source and
    sink merge into one TunableConnection whose activation is the OR of
    theirs (paper Fig. 3).
    """

    source: str
    sink: str
    activation: ActivationFunction


@dataclass
class TunablePad:
    """A tunable IO pad: carries one primary IO signal per mode."""

    name: str
    n_modes: int
    direction: str  # "in" or "out"
    signals: Dict[int, str] = field(default_factory=dict)
    site: Optional[Site] = None


class TunableCircuit:
    """A merged multi-mode circuit.

    Built by :mod:`repro.core.merge` from per-mode LUT circuits plus a
    grouping decision (which LUTs share a Tunable LUT, which IOs share
    a pad).  Offers specialisation back to per-mode LUT circuits (the
    correctness oracle) and the site-level connection workload consumed
    by TRoute.
    """

    def __init__(self, name: str, k: int, n_modes: int) -> None:
        self.name = name
        self.k = k
        self.n_modes = n_modes
        self.encoding = ModeEncoding(n_modes)
        self.tluts: Dict[str, TunableLut] = {}
        self.pads: Dict[str, TunablePad] = {}
        # signal of mode -> tunable cell name carrying it
        self.cell_of_signal: Dict[Tuple[int, str], str] = {}
        self.connections: List[TunableConnection] = []

    # -- construction -------------------------------------------------------

    def add_tlut(self, name: str, site: Optional[Site] = None
                 ) -> TunableLut:
        if name in self.tluts or name in self.pads:
            raise ValueError(f"duplicate tunable cell {name}")
        tlut = TunableLut(name, self.k, self.n_modes, site=site)
        self.tluts[name] = tlut
        return tlut

    def add_pad(self, name: str, direction: str,
                site: Optional[Site] = None) -> TunablePad:
        if name in self.tluts or name in self.pads:
            raise ValueError(f"duplicate tunable cell {name}")
        pad = TunablePad(name, self.n_modes, direction, site=site)
        self.pads[name] = pad
        return pad

    def bind_signal(self, mode: int, signal: str, cell: str) -> None:
        """Record that *cell* carries mode *mode*'s signal *signal*."""
        key = (mode, signal)
        if key in self.cell_of_signal:
            raise ValueError(
                f"signal {signal} of mode {mode} already bound"
            )
        self.cell_of_signal[key] = cell

    def finalize_connections(
        self, per_mode_connections: Dict[int, List[Tuple[str, str]]]
    ) -> None:
        """Merge per-mode cell-level connections into tunable ones.

        *per_mode_connections* maps mode -> list of (source cell, sink
        cell).  Connections with identical endpoints merge; their
        activation functions are ORed (paper Section III).
        """
        grouped: Dict[Tuple[str, str], Set[int]] = {}
        for mode, conns in per_mode_connections.items():
            for source, sink in conns:
                grouped.setdefault((source, sink), set()).add(mode)
        self.connections = [
            TunableConnection(
                source,
                sink,
                ActivationFunction.of(modes, self.n_modes),
            )
            for (source, sink), modes in sorted(grouped.items())
        ]

    # -- statistics --------------------------------------------------------

    def n_tunable_connections(self) -> int:
        return len(self.connections)

    def n_shared_connections(self) -> int:
        """Connections active in every mode (no routing bits change)."""
        return sum(
            1 for c in self.connections if c.activation.is_always()
        )

    def n_parameterized_lut_bits(self) -> int:
        return sum(
            t.n_parameterized_bits() for t in self.tluts.values()
        )

    def stats(self) -> Dict[str, int]:
        return {
            "tluts": len(self.tluts),
            "pads": len(self.pads),
            "connections": self.n_tunable_connections(),
            "shared_connections": self.n_shared_connections(),
            "parameterized_lut_bits": self.n_parameterized_lut_bits(),
        }

    # -- specialisation (correctness oracle) ---------------------------------

    def specialize(self, mode: int) -> LutCircuit:
        """Reconstruct mode *mode*'s LUT circuit from the merged form.

        Every Tunable LUT is evaluated at the mode value (paper: "when
        evaluating the Tunable LUT ... for a certain mode value, the
        correct bit values for the LUTs ... are obtained").  The result
        must be functionally identical to the original mode circuit —
        the invariant the test-suite checks.
        """
        if not 0 <= mode < self.n_modes:
            raise ValueError(f"mode {mode} out of range")
        circuit = LutCircuit(f"{self.name}.m{mode}", self.k)
        for pad in self.pads.values():
            signal = pad.signals.get(mode)
            if signal is not None and pad.direction == "in":
                circuit.add_input(signal)
        for tlut in self.tluts.values():
            member = tlut.members.get(mode)
            if member is None:
                continue
            bits, registered = tlut.specialize(mode)
            # Reduce the K-input table back onto the member's inputs.
            full = TruthTable(self.k, bits)
            reduced = full
            for var in reversed(range(len(member.inputs), self.k)):
                reduced = reduced.restrict(var, False)
            circuit.add_block(
                member.name,
                member.inputs,
                reduced,
                registered=registered,
                init=member.init,
            )
        for pad in self.pads.values():
            signal = pad.signals.get(mode)
            if signal is not None and pad.direction == "out":
                circuit.add_output(signal)
        circuit.validate()
        return circuit

    # -- routing workload -----------------------------------------------------

    def site_connections(self):
        """Site-level connections for TRoute.

        Requires every tunable cell to carry a site (i.e. a combined
        placement or TPlace result).  Returns entries of the form
        consumed by :func:`repro.route.troute.route_tunable_circuit`.
        """
        sites: Dict[str, Site] = {}
        for name, tlut in self.tluts.items():
            if tlut.site is None:
                raise ValueError(f"tunable LUT {name} has no site")
            sites[name] = tlut.site
        for name, pad in self.pads.items():
            if pad.site is None:
                raise ValueError(f"tunable pad {name} has no site")
            sites[name] = pad.site
        return [
            (
                conn.source,
                sites[conn.source],
                sites[conn.sink],
                frozenset(conn.activation.modes),
            )
            for conn in self.connections
        ]
