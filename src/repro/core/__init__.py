"""The paper's contribution: multi-mode merging with DCS.

* :mod:`repro.core.modes` — binary mode encoding and Boolean products
  over the mode bits (paper Section III).
* :mod:`repro.core.activation` — activation functions of tunable
  connections (sets of modes, rendered as minimised mode-bit
  expressions).
* :mod:`repro.core.tunable` — Tunable circuits: Tunable LUTs whose
  configuration bits are Boolean functions of the mode, and Tunable
  connections (paper Figs. 3 and 4).
* :mod:`repro.core.merge` — merging per-mode LUT circuits into one
  Tunable circuit, from a combined placement or by index.
* :mod:`repro.core.combined_placement` — the simultaneous placement of
  all modes with the circuit-edge-matching and wire-length cost
  functions (paper Sections III-A/B), plus TPlace refinement.
* :mod:`repro.core.reconfig` — reconfiguration-cost accounting (bits
  rewritten for MDR / Diff / DCS).
* :mod:`repro.core.flow` — the end-to-end MDR and DCS tool flows.
* :mod:`repro.core.verilog_export` — parameterised Verilog of the
  merged circuit (mode-multiplexed truth tables and connections).
"""

from repro.core.activation import ActivationFunction
from repro.core.flow import DcsFlow, MdrFlow, MultiModeResult
from repro.core.manager import (
    ParameterizedConfiguration,
    ReconfigurationManager,
)
from repro.core.merge import MergeStrategy
from repro.core.modes import ModeEncoding
from repro.core.tunable import TunableCircuit, TunableConnection, TunableLut
from repro.core.verilog_export import write_tunable_verilog

__all__ = [
    "ActivationFunction",
    "write_tunable_verilog",
    "DcsFlow",
    "MdrFlow",
    "MultiModeResult",
    "MergeStrategy",
    "ModeEncoding",
    "ParameterizedConfiguration",
    "ReconfigurationManager",
    "TunableCircuit",
    "TunableConnection",
    "TunableLut",
]
