"""Merging per-mode LUT circuits into one Tunable circuit.

The key step of the paper's tool flow (Section III, Fig. 3): decide
which LUTs of different modes are implemented by the same Tunable LUT,
then annotate all connections with activation functions and merge the
ones with identical endpoints.

Two groupings are provided:

* :func:`merge_from_placement` — extract the Tunable circuit from a
  *combined placement*: LUTs positioned on the same physical logic
  block share a Tunable LUT (paper Section III-A).  This is the path
  both optimisation options (edge matching / wire length) use.
* :func:`merge_by_index` — the naive illustration of Fig. 3: the i-th
  LUT of every mode shares a Tunable LUT.  Kept as an ablation baseline
  and for placement-free unit tests.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

from repro.arch.architecture import Site
from repro.netlist.lutcircuit import LutCircuit
from repro.core.tunable import TunableCircuit
from repro.place.placer import pad_cell


class MergeStrategy(enum.Enum):
    """How the LUT grouping of the Tunable circuit is chosen."""

    #: Naive Fig. 3 grouping: i-th LUT of every mode.
    BY_INDEX = "by_index"
    #: Combined placement optimising matched connections (prior art,
    #: Rullmann & Merker).
    EDGE_MATCHING = "edge_matching"
    #: Combined placement optimising estimated wire length (the
    #: paper's novel approach).
    WIRE_LENGTH = "wire_length"


def _io_direction(circuits: Sequence[LutCircuit], signal: str) -> str:
    for circuit in circuits:
        if signal in circuit.inputs:
            return "in"
        if signal in circuit.outputs:
            return "out"
    raise ValueError(f"{signal} is not a primary IO of any mode")


def _check_modes(mode_circuits: Sequence[LutCircuit]) -> int:
    if len(mode_circuits) < 2:
        raise ValueError("a multi-mode circuit needs >= 2 modes")
    k = mode_circuits[0].k
    if any(c.k != k for c in mode_circuits):
        raise ValueError("all modes must target the same LUT size")
    return k


def _pad_signals(circuit: LutCircuit) -> List[Tuple[str, str]]:
    """(signal, direction) of every IO pad of one mode."""
    return [(s, "in") for s in circuit.inputs] + [
        (s, "out") for s in circuit.outputs
    ]


def _mode_cell_connections(
    circuit: LutCircuit,
    cell_of: Dict[str, str],
) -> List[Tuple[str, str]]:
    """Cell-level connections of one mode under the naming *cell_of*.

    *cell_of* maps the mode's signal names (blocks, PIs) and output-pad
    cells to tunable-cell names.
    """
    conns = []
    for block in circuit.blocks.values():
        sink = cell_of[block.name]
        for src in block.inputs:
            conns.append((cell_of[src], sink))
    for out in circuit.outputs:
        conns.append((cell_of[out], cell_of[pad_cell(out)]))
    return conns


def merge_from_placement(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    block_sites: Dict[Tuple[int, str], Site],
    pad_sites: Dict[str, Site],
) -> TunableCircuit:
    """Extract the Tunable circuit from a combined placement.

    ``block_sites`` maps ``(mode, block name)`` to the logic tile the
    block occupies; ``pad_sites`` maps pad cells (``pad:<signal>``,
    shared across modes by signal name) to pad slots.  LUTs of
    different modes on the same tile become one Tunable LUT; the
    resulting Tunable cells inherit their sites, so the circuit is
    ready for TRoute (optionally after TPlace refinement).
    """
    k = _check_modes(mode_circuits)
    n_modes = len(mode_circuits)
    tc = TunableCircuit(name, k, n_modes)

    # Tunable LUTs from co-located blocks.
    tlut_of_site: Dict[Site, str] = {}
    for mode, circuit in enumerate(mode_circuits):
        for block in circuit.blocks.values():
            site = block_sites[(mode, block.name)]
            if site.kind != "clb":
                raise ValueError(
                    f"block {block.name} placed on non-CLB site"
                )
            tlut_name = tlut_of_site.get(site)
            if tlut_name is None:
                tlut_name = f"tl{site.x}_{site.y}"
                tc.add_tlut(tlut_name, site=site)
                tlut_of_site[site] = tlut_name
            tc.tluts[tlut_name].add_member(mode, block)
            tc.bind_signal(mode, block.name, tlut_name)

    # Tunable pads (shared across modes by signal name).
    pad_name_of_cell: Dict[str, str] = {}
    for cell, site in pad_sites.items():
        if site.kind != "pad":
            raise ValueError(f"pad cell {cell} placed on non-pad site")
        signal = cell.split(":", 1)[1]
        direction = _io_direction(mode_circuits, signal)
        pad_name = f"pad{site.x}_{site.y}_{site.slot}"
        pad = tc.add_pad(pad_name, direction, site=site)
        pad_name_of_cell[cell] = pad_name
        for mode, circuit in enumerate(mode_circuits):
            ios = (
                circuit.inputs if direction == "in" else circuit.outputs
            )
            if signal in ios:
                pad.signals[mode] = signal
                if direction == "in":
                    tc.bind_signal(mode, signal, pad_name)

    # Connections.
    per_mode: Dict[int, List[Tuple[str, str]]] = {}
    for mode, circuit in enumerate(mode_circuits):
        cell_of: Dict[str, str] = {}
        for block in circuit.blocks.values():
            cell_of[block.name] = tc.cell_of_signal[(mode, block.name)]
        for signal in circuit.inputs:
            cell_of[signal] = pad_name_of_cell[pad_cell(signal)]
        for signal in circuit.outputs:
            cell_of[pad_cell(signal)] = pad_name_of_cell[
                pad_cell(signal)
            ]
        per_mode[mode] = _mode_cell_connections(circuit, cell_of)
    tc.finalize_connections(per_mode)
    return tc


def merge_by_index(
    name: str,
    mode_circuits: Sequence[LutCircuit],
) -> TunableCircuit:
    """Naive merge: the i-th LUT of every mode shares a Tunable LUT.

    IO pads are shared by signal name (same-named IOs of different
    modes are the same physical pin).  No sites are assigned; run
    TPlace before routing.
    """
    k = _check_modes(mode_circuits)
    n_modes = len(mode_circuits)
    tc = TunableCircuit(name, k, n_modes)

    orders = [sorted(c.blocks) for c in mode_circuits]
    n_tluts = max(len(order) for order in orders)
    for i in range(n_tluts):
        tc.add_tlut(f"tl{i}")
    for mode, order in enumerate(orders):
        for i, block_name in enumerate(order):
            block = mode_circuits[mode].blocks[block_name]
            tc.tluts[f"tl{i}"].add_member(mode, block)
            tc.bind_signal(mode, block_name, f"tl{i}")

    pad_name_of_cell: Dict[str, str] = {}
    for mode, circuit in enumerate(mode_circuits):
        for signal, direction in _pad_signals(circuit):
            cell = pad_cell(signal)
            pad_name = pad_name_of_cell.get(cell)
            if pad_name is None:
                pad_name = f"pad_{signal}"
                tc.add_pad(pad_name, direction)
                pad_name_of_cell[cell] = pad_name
            pad = tc.pads[pad_name]
            if pad.direction != direction:
                raise ValueError(
                    f"IO {signal} changes direction between modes"
                )
            pad.signals[mode] = signal
            if direction == "in":
                tc.bind_signal(mode, signal, pad_name)

    per_mode: Dict[int, List[Tuple[str, str]]] = {}
    for mode, circuit in enumerate(mode_circuits):
        cell_of: Dict[str, str] = {}
        for block in circuit.blocks.values():
            cell_of[block.name] = tc.cell_of_signal[(mode, block.name)]
        for signal in circuit.inputs:
            cell_of[signal] = pad_name_of_cell[pad_cell(signal)]
        for signal in circuit.outputs:
            cell_of[pad_cell(signal)] = pad_name_of_cell[
                pad_cell(signal)
            ]
        per_mode[mode] = _mode_cell_connections(circuit, cell_of)
    tc.finalize_connections(per_mode)
    return tc
