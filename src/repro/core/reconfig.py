"""Reconfiguration-cost accounting (paper Section IV-C.1).

The paper assumes reconfiguration time is proportional to the number of
configuration-memory bits rewritten on a mode switch and compares three
accountings:

* **MDR** — the whole reconfigurable region is rewritten: every LUT bit
  and every routing bit of the region.
* **Diff** (``RegExp-Diff`` in Fig. 6) — all LUT bits are rewritten but
  only the routing bits whose values actually differ between the
  separately implemented modes are counted.  This isolates the
  "region-based writing" overhead of MDR (factor ~5 in the paper).
* **DCS** — all LUT bits plus only the *parameterised* routing bits of
  the combined implementation (factor ~4 on top of Diff).

All quantities are derived from per-mode on-bit sets produced by the
router, against the region budget of the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import RoutingResourceGraph


@dataclass(frozen=True)
class ReconfigCost:
    """Bits rewritten on one mode switch, split by resource type."""

    lut_bits: int
    routing_bits: int

    @property
    def total(self) -> int:
        return self.lut_bits + self.routing_bits

    def routing_fraction(self) -> float:
        """Share of the rewrite spent on routing bits (Fig. 6)."""
        if self.total == 0:
            return 0.0
        return self.routing_bits / self.total


def varying_bits(bit_sets: Sequence[Set[int]]) -> Set[int]:
    """Bits that are not constant across the given per-mode on-sets."""
    if not bit_sets:
        return set()
    union: Set[int] = set()
    intersection: Set[int] = set(bit_sets[0])
    for bits in bit_sets:
        union |= bits
        intersection &= bits
    return union - intersection


def mdr_cost(
    arch: FpgaArchitecture, rrg: RoutingResourceGraph
) -> ReconfigCost:
    """MDR rewrites the full region regardless of content."""
    return ReconfigCost(
        lut_bits=arch.total_lut_bits(),
        routing_bits=rrg.n_bits,
    )


def diff_cost(
    arch: FpgaArchitecture,
    per_mode_bits: Sequence[Set[int]],
) -> ReconfigCost:
    """All LUT bits + routing bits differing between the separate
    (MDR-style) implementations."""
    return ReconfigCost(
        lut_bits=arch.total_lut_bits(),
        routing_bits=len(varying_bits(per_mode_bits)),
    )


def dcs_cost(
    arch: FpgaArchitecture,
    per_mode_bits: Sequence[Set[int]],
) -> ReconfigCost:
    """All LUT bits + parameterised routing bits of the combined
    implementation.

    Identical arithmetic to :func:`diff_cost` — the difference is the
    input: these bit sets come from TRoute on the merged circuit, where
    the combined placement has aligned the modes.
    """
    return ReconfigCost(
        lut_bits=arch.total_lut_bits(),
        routing_bits=len(varying_bits(per_mode_bits)),
    )


def dcs_cost_lut_diff(
    tunable,
    per_mode_bits: Sequence[Set[int]],
) -> ReconfigCost:
    """DCS cost counting only mode-dependent LUT bits.

    Paper Section IV-C.1: "our results would even improve if we would
    count only the LUT bits that have a different value for the
    different modes, since this would increase the routing to LUT
    ratio."  The parameterised LUT bits come straight from the Tunable
    LUTs' Fig. 4 bit expressions (bits whose expression is neither
    constant 0 nor constant 1).
    """
    return ReconfigCost(
        lut_bits=tunable.n_parameterized_lut_bits(),
        routing_bits=len(varying_bits(per_mode_bits)),
    )


def speedup(baseline: ReconfigCost, improved: ReconfigCost) -> float:
    """Reconfiguration speed-up of *improved* over *baseline* (Fig. 5)."""
    if improved.total == 0:
        raise ValueError("improved cost is zero")
    return baseline.total / improved.total


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of Fig. 6: LUT vs routing contribution of a variant."""

    label: str
    lut_bits: int
    routing_bits: int

    @property
    def total(self) -> int:
        return self.lut_bits + self.routing_bits

    def percentages(self) -> Dict[str, float]:
        if self.total == 0:
            return {"lut": 0.0, "routing": 0.0}
        return {
            "lut": 100.0 * self.lut_bits / self.total,
            "routing": 100.0 * self.routing_bits / self.total,
        }


def breakdown_rows(
    mdr: ReconfigCost, diff: ReconfigCost, dcs: ReconfigCost,
    prefix: str = "",
) -> List[BreakdownRow]:
    """The three bars of Fig. 6 for one application."""
    return [
        BreakdownRow(f"{prefix}MDR", mdr.lut_bits, mdr.routing_bits),
        BreakdownRow(f"{prefix}Diff", diff.lut_bits, diff.routing_bits),
        BreakdownRow(f"{prefix}DCS", dcs.lut_bits, dcs.routing_bits),
    ]
