"""Stable content fingerprints of flow-stage inputs.

A stage result may be reused only when *every* input that can influence
it is identical.  :func:`fingerprint` reduces the inputs — LUT
circuits, architectures, flow options, placements, seeds — to one
SHA-256 hex digest over a canonical, type-tagged serialisation:

* containers are serialised recursively with an explicit type tag, so
  ``[1]`` and ``(1,)`` and ``{1}`` hash differently;
* dict entries and set elements are sorted by their serialised form,
  so iteration order cannot leak into the hash;
* dataclasses and enums hash as (qualified class name, field values),
  so renaming a field or adding one invalidates old entries;
* floats are hashed through ``repr`` (shortest round-trip form), ints
  through their decimal form — equal values hash equally, but
  ``1.0`` and ``1`` do not collide because of the type tag.

Bump :data:`FINGERPRINT_VERSION` whenever the semantics of a stage
change in a way the inputs cannot express (e.g. a router cost-model
fix): the version participates in every cache key, so old entries are
orphaned rather than silently reused.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

#: Participates in every cache key; bump to invalidate all cached
#: stage results after a semantic change to any flow stage.
FINGERPRINT_VERSION = 1


class Unfingerprintable(TypeError):
    """Raised for values with no canonical serialisation."""


def _walk(value: Any, out: "hashlib._Hash") -> None:
    """Feed the canonical serialisation of *value* into *out*."""
    if value is None:
        out.update(b"N")
    elif value is True:
        out.update(b"T")
    elif value is False:
        out.update(b"F")
    elif isinstance(value, int):
        data = str(value).encode()
        out.update(b"i%d:" % len(data) + data)
    elif isinstance(value, float):
        data = repr(value).encode()
        out.update(b"f%d:" % len(data) + data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.update(b"s%d:" % len(data) + data)
    elif isinstance(value, bytes):
        out.update(b"b%d:" % len(value) + value)
    elif isinstance(value, (list, tuple)):
        out.update(b"l(" if isinstance(value, list) else b"t(")
        for item in value:
            _walk(item, out)
        out.update(b")")
    elif isinstance(value, (set, frozenset)):
        out.update(b"S(")
        for digest in sorted(_digest(item) for item in value):
            out.update(digest)
        out.update(b")")
    elif isinstance(value, dict):
        out.update(b"d(")
        entries = sorted(
            (_digest(k), _digest(v)) for k, v in value.items()
        )
        for key_digest, value_digest in entries:
            out.update(key_digest)
            out.update(value_digest)
        out.update(b")")
    elif isinstance(value, enum.Enum):
        _tagged(value, (value.value,), out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
        _tagged(value, fields, out)
    elif hasattr(value, "__fingerprint__"):
        _tagged(value, (value.__fingerprint__(),), out)
    else:
        body = _structure(value)
        if body is None:
            raise Unfingerprintable(
                "no canonical serialisation for "
                f"{type(value).__module__}.{type(value).__qualname__}"
            )
        _tagged(value, body, out)


def _tagged(value: Any, body: Any, out: "hashlib._Hash") -> None:
    cls = type(value)
    name = f"{cls.__module__}.{cls.__qualname__}".encode()
    out.update(b"o%d:" % len(name) + name + b"(")
    _walk(body, out)
    out.update(b")")


def _structure(value: Any) -> Any:
    """Canonical body of the domain types that are not dataclasses."""
    # Imported lazily: fingerprinting must stay importable from worker
    # processes without dragging the whole flow in at module load.
    from repro.netlist.lutcircuit import LutCircuit
    from repro.netlist.truthtable import TruthTable

    if isinstance(value, TruthTable):
        return (value.n_vars, value.bits)
    if isinstance(value, LutCircuit):
        return (
            value.name,
            value.k,
            tuple(value.inputs),
            tuple(value.outputs),
            {
                name: (
                    tuple(block.inputs),
                    block.table,
                    block.registered,
                    block.init,
                )
                for name, block in value.blocks.items()
            },
        )
    return None


def _digest(value: Any) -> bytes:
    h = hashlib.sha256()
    _walk(value, h)
    return h.digest()


def fingerprint(*values: Any) -> str:
    """SHA-256 hex digest of the canonical form of *values*."""
    h = hashlib.sha256()
    h.update(b"v%d" % FINGERPRINT_VERSION)
    for value in values:
        _walk(value, h)
    return h.hexdigest()


_code_fingerprint: Any = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package's own source code.

    Stage results depend on the code that computed them, not only on
    the inputs — folding this into every cache key means editing any
    module orphans stale entries automatically, with no manual
    ``FINGERPRINT_VERSION`` bump needed.  Computed once per process
    (one read of the package's ``.py`` files, a few milliseconds).
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import pathlib

        import repro

        package_root = pathlib.Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            h.update(str(path.relative_to(package_root)).encode())
            try:
                h.update(path.read_bytes())
            except OSError:
                pass
        _code_fingerprint = h.hexdigest()
    return _code_fingerprint
