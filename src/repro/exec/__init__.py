"""Parallel flow execution with persistent stage caching.

The ``repro.exec`` subsystem is the machinery that lets the tool flow
scale to the paper's full experiment sweeps (Figs. 5-7, Table 1) and
beyond:

* :mod:`repro.exec.fingerprint` — stable content hashes of every stage
  input (LUT circuits, architectures, flow options), so a stage result
  is addressed by *what* produced it, not *when*.
* :mod:`repro.exec.cache` — an on-disk, hash-addressed memo of stage
  results (placements, routings, merged tunable circuits, whole
  multi-mode results) with atomic writes and corruption tolerance.
* :mod:`repro.exec.jobs` — the transport-agnostic job-graph core:
  submit/await/cancel with explicit job states over pluggable inline,
  thread-pool, and process-pool executors, plus priority dispatch and
  graceful resize/drain (the substrate of the ``repro.serve`` flow
  service).
* :mod:`repro.exec.scheduler` — deterministic batch facade over the
  job core (results are returned in submission order regardless of
  completion order).
* :mod:`repro.exec.progress` — wall-clock accounting per stage, merged
  across worker processes, feeding ``BENCH_exec.json``.

The cache key of a stage is ``sha256(version, stage name, canonical
serialisation of every input)``; see :func:`repro.exec.fingerprint.fingerprint`
for the canonicalisation rules and ``ARCHITECTURE.md`` for the cache
layout and invalidation rules.
"""

from repro.exec.cache import (
    CacheStats,
    StageCache,
    atomic_append_text,
    atomic_write_bytes,
    atomic_write_text,
    default_cache_dir,
)
from repro.exec.fingerprint import FINGERPRINT_VERSION, fingerprint
from repro.exec.jobs import (
    InlineExecutor,
    Job,
    JobExecutor,
    JobGraph,
    JobState,
    ProcessJobExecutor,
    ThreadJobExecutor,
    effective_workers,
    executor_for,
    resolve_workers,
    run_tasks,
)
from repro.exec.progress import ProgressLog, StageRecord
from repro.exec.scheduler import Scheduler, Task, default_workers

__all__ = [
    "InlineExecutor",
    "Job",
    "JobExecutor",
    "JobGraph",
    "JobState",
    "ProcessJobExecutor",
    "ThreadJobExecutor",
    "effective_workers",
    "executor_for",
    "resolve_workers",
    "run_tasks",
    "CacheStats",
    "StageCache",
    "atomic_append_text",
    "atomic_write_bytes",
    "atomic_write_text",
    "default_cache_dir",
    "FINGERPRINT_VERSION",
    "fingerprint",
    "ProgressLog",
    "StageRecord",
    "Scheduler",
    "Task",
    "default_workers",
]
