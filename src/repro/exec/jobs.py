"""Transport-agnostic job-graph core.

This module is the reusable heart of the execution subsystem: jobs are
submitted to a :class:`JobGraph`, dispatched to a pluggable
:class:`JobExecutor` (inline, thread pool, or process pool), and carry
an explicit lifecycle state (:class:`JobState`).  Nothing here assumes
a ``ProcessPoolExecutor``, an event loop, or a particular transport —
the batch :class:`repro.exec.scheduler.Scheduler` facade, the campaign
runner, and the ``repro.serve`` HTTP service are all thin clients of
this one core.

Determinism contract (inherited by every client):

* :meth:`JobGraph.wait` returns results in **submission order**,
  whatever the completion order was, and fires ``on_result(index,
  result)`` incrementally in strict submission order — callers
  checkpoint durable state from the callback (campaign JSONL) and a
  killed run resumes byte-identical.
* **First failure wins**: the first job *by submission order* that
  raised propagates its original exception; still-pending jobs are
  cancelled, running ones finish but their results are discarded.

Priority is a dispatch-order hint, not a preemption mechanism: the
graph keeps its own pending heap and only hands jobs to the executor
up to its capacity, so a higher-priority submission overtakes queued
lower-priority work even while the pool is saturated.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, List, Optional, Sequence, Tuple


def default_workers() -> int:
    """Worker count honouring ``REPRO_WORKERS`` (default: serial).

    Serial-by-default keeps unit tests and library callers free of
    process-pool surprises; the CLI, the experiment harness, and the
    flow server opt in explicitly.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a caller-supplied worker count (``None`` = default)."""
    if workers is None:
        return default_workers()
    return max(1, int(workers))


def effective_workers(
    workers: int, n_tasks: int, use_threads: bool = False
) -> int:
    """Pool size a batch of *n_tasks* would actually run with.

    Never more processes than there is work or hardware:
    oversubscribing cores only adds context-switch and memory pressure
    (results are order-locked, so this cannot change them).  ``1``
    means the batch executes inline; callers use this to decide
    whether to ship shared objects or let workers rebuild them.
    Thread pools are not capped by the core count: they exist for
    unpicklable or latency-hiding work, and the
    worker-count-independence tests must be able to exercise a real
    multi-thread pool on single-core CI boxes.
    """
    if use_threads:
        return max(1, min(workers, n_tasks))
    return max(1, min(workers, n_tasks, os.cpu_count() or 1))


@dataclass(frozen=True)
class Task:
    """One unit of schedulable work.

    ``fn`` must be an importable module-level callable when the batch
    runs on a process pool (it is pickled by reference); ``args`` must
    then be picklable.  Thread and inline execution accept closures.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    name: str = ""


class JobState(str, Enum):
    """Explicit job lifecycle; values are JSON/wire-friendly strings."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Job:
    """One submitted unit of work plus its lifecycle.

    The public surface is read-only: ``state``, ``result()``,
    ``cancel()``, and ``on_state(callback)``.  State transitions are
    driven by the owning :class:`JobGraph`; listeners fire outside the
    graph lock, in the thread where the transition happened, and a
    listener added after a terminal transition fires immediately.
    """

    __slots__ = (
        "id", "name", "priority", "fn", "args",
        "future", "_graph", "_state", "_listeners",
    )

    def __init__(
        self,
        job_id: int,
        name: str,
        priority: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        graph: "JobGraph",
    ) -> None:
        self.id = job_id
        self.name = name
        self.priority = priority
        self.fn = fn
        self.args = args
        self.future: Future = Future()
        self._graph = graph
        self._state = JobState.PENDING
        self._listeners: List[Callable[["Job", JobState], None]] = []

    @property
    def state(self) -> JobState:
        return self._state

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the job completes; raise what it raised."""
        return self._graph.result(self, timeout=timeout)

    def cancel(self) -> bool:
        """Cancel if still pending; ``True`` when the job never runs."""
        return self._graph.cancel(self)

    def on_state(self, callback: Callable[["Job", JobState], None]) -> None:
        """Register ``callback(job, state)`` for every later transition."""
        fire: Optional[JobState] = None
        with self._graph._lock:
            if self._state.terminal:
                fire = self._state
            else:
                self._listeners.append(callback)
        if fire is not None:
            callback(self, fire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.id}, name={self.name!r}, "
            f"state={self._state.value})"
        )


class JobExecutor:
    """Where dispatched jobs actually run.

    ``capacity()`` bounds how many jobs the :class:`JobGraph` hands
    over at once — the graph, not the pool, owns the queue, which is
    what makes priority lanes and graceful resizing possible.
    """

    #: Lazy executors never receive dispatched jobs; the graph runs
    #: pending jobs in the awaiting caller's thread instead.
    lazy = False
    kind = "abstract"

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        raise NotImplementedError

    def capacity(self) -> int:
        raise NotImplementedError

    def resize(self, workers: int) -> None:
        """Change capacity; in-flight work finishes where it started."""

    def shutdown(self, wait: bool = True) -> None:
        pass


class InlineExecutor(JobExecutor):
    """Serial execution in the awaiting caller's thread.

    No pool, no pickling, identical code path for tests and for nested
    calls (a job running inside a worker process never spawns its own
    pool).  Jobs run lazily when awaited — :meth:`JobGraph.wait`
    executes them one by one in submission order, so incremental
    ``on_result`` checkpointing sees exactly the serial schedule.
    """

    lazy = True
    kind = "inline"

    def capacity(self) -> int:
        return 0


class ThreadJobExecutor(JobExecutor):
    """Thread-pool execution for unpicklable or latency-hiding work."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        return self._pool.submit(fn, *args)

    def capacity(self) -> int:
        return self.workers

    def resize(self, workers: int) -> None:
        workers = max(1, int(workers))
        if workers == self.workers:
            return
        old = self._pool
        self._pool = ThreadPoolExecutor(max_workers=workers)
        self.workers = workers
        # Graceful: jobs already handed to the old pool finish there.
        old.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


class ProcessJobExecutor(ThreadJobExecutor):
    """Process-pool execution for picklable, CPU-bound flow stages."""

    kind = "process"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def resize(self, workers: int) -> None:
        workers = max(1, int(workers))
        if workers == self.workers:
            return
        old = self._pool
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self.workers = workers
        old.shutdown(wait=False)


def executor_for(
    workers: int, n_tasks: int, use_threads: bool = False
) -> JobExecutor:
    """The executor a one-shot batch of *n_tasks* should run on."""
    n = effective_workers(workers, n_tasks, use_threads)
    if n <= 1:
        return InlineExecutor()
    if use_threads:
        return ThreadJobExecutor(n)
    return ProcessJobExecutor(n)


class JobGraph:
    """Submit/await/cancel over a pluggable executor.

    Thread-safe: submissions, completion callbacks (which arrive on
    pool threads), and awaiting callers may interleave freely.  The
    graph holds every pending job in a priority heap and dispatches at
    most ``executor.capacity()`` at a time.
    """

    def __init__(self, executor: Optional[JobExecutor] = None) -> None:
        self.executor = executor if executor is not None else InlineExecutor()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._counter = itertools.count()
        self._heap: List[Tuple[int, int, Job]] = []
        self._n_pending = 0
        self._in_flight = 0
        self._draining = False

    # -- submission ---------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "",
        priority: int = 0,
    ) -> Job:
        """Queue one job; higher *priority* dispatches first."""
        with self._lock:
            if self._draining:
                raise RuntimeError(
                    "job graph is draining; new submissions are refused"
                )
            seq = next(self._counter)
            job = Job(
                seq, name or f"job{seq}", priority, fn, tuple(args), self
            )
            heapq.heappush(self._heap, (-priority, seq, job))
            self._n_pending += 1
        self._dispatch()
        return job

    def submit_task(self, task: Task, priority: int = 0) -> Job:
        return self.submit(
            task.fn, *task.args, name=task.name, priority=priority
        )

    # -- dispatch -----------------------------------------------------

    def _dispatch(self) -> None:
        """Hand queued jobs to the executor up to its capacity."""
        if self.executor.lazy:
            return
        while True:
            with self._lock:
                if self._in_flight >= self.executor.capacity():
                    return
                job = self._pop_pending_locked()
                if job is None:
                    return
                job._state = JobState.RUNNING
                job.future.set_running_or_notify_cancel()
                self._in_flight += 1
                listeners = list(job._listeners)
                submit = self.executor.submit
            self._fire(listeners, job, JobState.RUNNING)
            try:
                inner = submit(job.fn, *job.args)
            except RuntimeError:
                # A concurrent resize retired the captured pool between
                # the lock release and the submit; the new pool takes it.
                inner = self.executor.submit(job.fn, *job.args)
            inner.add_done_callback(
                lambda f, job=job: self._finish(job, f)
            )

    def _pop_pending_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job._state is JobState.PENDING:
                self._n_pending -= 1
                return job
        return None

    def _finish(self, job: Job, inner: Future) -> None:
        result: Any = None
        error: Optional[BaseException] = None
        try:
            result = inner.result()
        except BaseException as exc:
            error = exc
        state = JobState.DONE if error is None else JobState.FAILED
        with self._lock:
            job._state = state
            listeners = list(job._listeners)
            job._listeners = []
            self._in_flight -= 1
            self._idle.notify_all()
        if error is None:
            job.future.set_result(result)
        else:
            job.future.set_exception(error)
        self._fire(listeners, job, state)
        self._dispatch()

    @staticmethod
    def _fire(
        listeners: Sequence[Callable[[Job, JobState], None]],
        job: Job,
        state: JobState,
    ) -> None:
        for callback in listeners:
            callback(job, state)

    # -- awaiting -----------------------------------------------------

    def result(self, job: Job, timeout: Optional[float] = None) -> Any:
        """Block until *job* completes; re-raise its exception."""
        if self.executor.lazy:
            self._run_inline(job)
        return job.future.result(timeout)

    def _run_inline(self, job: Job) -> None:
        with self._lock:
            if job._state is not JobState.PENDING:
                return
            job._state = JobState.RUNNING
            self._n_pending -= 1
            listeners = list(job._listeners)
        self._fire(listeners, job, JobState.RUNNING)
        if not job.future.set_running_or_notify_cancel():  # pragma: no cover
            return
        try:
            result = job.fn(*job.args)
        except BaseException as exc:
            state = JobState.FAILED
            job.future.set_exception(exc)
        else:
            state = JobState.DONE
            job.future.set_result(result)
        with self._lock:
            job._state = state
            listeners = list(job._listeners)
            job._listeners = []
            self._idle.notify_all()
        self._fire(listeners, job, state)

    def wait(
        self,
        jobs: Sequence[Job],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Await *jobs*; results in submission order.

        ``on_result(index, result)`` — when given — is invoked in the
        calling thread, in strict submission order, as each prefix of
        the batch completes.  Callers use it to checkpoint durable
        state incrementally (the campaign JSONL): when the process is
        killed mid-batch, every result already handed to ``on_result``
        was complete, and the unreported suffix is simply recomputed
        on resume.  The callback sees exactly the results ``wait``
        returns, so it cannot perturb determinism.
        """
        results: List[Any] = [None] * len(jobs)
        error: Optional[BaseException] = None
        for index, job in enumerate(jobs):
            if error is not None:
                self.cancel(job)
                continue
            try:
                results[index] = self.result(job)
            except BaseException as exc:  # first failure wins
                error = exc
                continue
            if on_result is not None:
                on_result(index, results[index])
        if error is not None:
            raise error
        return results

    # -- cancellation -------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Cancel *job* if still pending.

        ``True`` means the job will never run; a running or finished
        job reports ``False`` and is left alone (flow stages are not
        interruptible mid-computation).  The heap entry of a cancelled
        job is skipped lazily at dispatch time.
        """
        with self._lock:
            if job._state is not JobState.PENDING:
                return False
            job._state = JobState.CANCELLED
            job.future.cancel()
            self._n_pending -= 1
            listeners = list(job._listeners)
            job._listeners = []
            self._idle.notify_all()
        self._fire(listeners, job, JobState.CANCELLED)
        return True

    # -- lifecycle ----------------------------------------------------

    def resize(self, workers: int) -> int:
        """Grow or shrink the executor; returns the new capacity.

        Running jobs finish on the pool they started on; queued jobs
        dispatch to the resized pool immediately.
        """
        self.executor.resize(workers)
        self._dispatch()
        return self.executor.capacity()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new submissions and wait for quiescence.

        Lazy executors run their whole pending queue here (in priority
        order).  Returns ``True`` once nothing is pending or running.
        """
        with self._lock:
            self._draining = True
        if self.executor.lazy:
            while True:
                with self._lock:
                    job = self._pop_pending_locked()
                    if job is not None:
                        # _run_inline re-checks state; re-queue bookkeeping
                        self._n_pending += 1
                if job is None:
                    break
                self._run_inline(job)
        with self._idle:
            if timeout is None:
                while self._n_pending or self._in_flight:
                    self._idle.wait()
                return True
            end = time.monotonic() + timeout
            while self._n_pending or self._in_flight:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": self._n_pending,
                "running": self._in_flight,
                "capacity": self.executor.capacity(),
                "executor": self.executor.kind,
                "draining": self._draining,
            }

    def shutdown(self, wait: bool = True) -> None:
        self.executor.shutdown(wait=wait)


def run_tasks(
    tasks: Sequence[Task],
    workers: Optional[int] = None,
    use_threads: bool = False,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """One-shot batch execution with the classic scheduler semantics.

    Builds a right-sized executor for the batch (inline when one
    worker suffices), submits everything, awaits in submission order,
    and tears the pool down.  This is the porting target for
    ``Scheduler.run`` and the flow drivers.
    """
    if not tasks:
        return []
    graph = JobGraph(
        executor_for(resolve_workers(workers), len(tasks), use_threads)
    )
    try:
        jobs = [graph.submit_task(task) for task in tasks]
        return graph.wait(jobs, on_result=on_result)
    finally:
        graph.shutdown()


__all__ = [
    "CancelledError",
    "InlineExecutor",
    "Job",
    "JobExecutor",
    "JobGraph",
    "JobState",
    "ProcessJobExecutor",
    "Task",
    "ThreadJobExecutor",
    "default_workers",
    "effective_workers",
    "executor_for",
    "resolve_workers",
    "run_tasks",
]
