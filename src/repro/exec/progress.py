"""Per-stage wall-clock accounting across worker processes.

Every flow stage records a :class:`StageRecord`; records produced
inside worker processes travel back with the task result and are merged
into the parent's :class:`ProgressLog`.  The aggregated per-stage
breakdown is what ``BENCH_exec.json`` reports, so later PRs can track
where the time goes as the system scales.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List


@dataclass(frozen=True)
class StageRecord:
    """One timed execution (or cache hit) of one flow stage."""

    stage: str  # e.g. "place", "route_lut", "dcs", "multimode"
    name: str  # workload item, e.g. "regexp_01/mode0"
    seconds: float
    cache_hit: bool = False


@dataclass
class ProgressLog:
    """Collects stage records; optionally narrates them to a stream."""

    verbose: bool = False
    stream: object = None
    records: List[StageRecord] = field(default_factory=list)

    def add(self, record: StageRecord) -> None:
        self.records.append(record)
        if self.verbose:
            stream = self.stream or sys.stderr
            tag = "cached" if record.cache_hit else (
                f"{record.seconds:.2f}s"
            )
            print(
                f"  [{record.stage}] {record.name}: {tag}",
                file=stream,
            )

    def extend(self, records: Iterable[StageRecord]) -> None:
        for record in records:
            self.add(record)

    @contextmanager
    def timed(
        self, stage: str, name: str, cache_hit: bool = False
    ) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(
                StageRecord(
                    stage, name, time.perf_counter() - start, cache_hit
                )
            )

    # -- aggregation ----------------------------------------------------------

    def breakdown(self) -> Dict[str, Dict[str, object]]:
        """Per-stage totals: count, cache hits, summed seconds."""
        result: Dict[str, Dict[str, object]] = {}
        for record in self.records:
            row = result.setdefault(
                record.stage,
                {"count": 0, "cache_hits": 0, "seconds": 0.0},
            )
            row["count"] += 1
            row["cache_hits"] += int(record.cache_hit)
            row["seconds"] = float(row["seconds"]) + record.seconds
        for row in result.values():
            row["seconds"] = round(float(row["seconds"]), 6)
        return result

    def total_seconds(self) -> float:
        """Summed stage time (CPU-side; exceeds wall clock when
        stages ran in parallel)."""
        return sum(r.seconds for r in self.records)


def timed_call(stage: str, name: str, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; returns ``(result, StageRecord)``.

    The worker-process counterpart of :meth:`ProgressLog.timed` — the
    record is returned instead of logged so it can be shipped back to
    the parent process with the result.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    record = StageRecord(
        stage, name, time.perf_counter() - start, False
    )
    return result, record
