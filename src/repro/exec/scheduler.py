"""Deterministic fan-out of independent flow-stage tasks.

The unit of work is a :class:`Task`: a picklable module-level function
plus positional arguments.  :meth:`Scheduler.run` executes a batch and
returns the results **in submission order**, whatever the completion
order was — parallel runs are therefore bit-for-bit interchangeable
with serial runs as long as the tasks themselves are independent and
deterministic, which every flow stage is (they are seeded and share no
mutable state).

``workers <= 1`` executes inline in the calling process: no pool, no
pickling, identical code path for tests and for nested calls (a task
running inside a worker process never spawns its own pool).

Failure semantics: the first task (by submission order) that raised
propagates its original exception; later tasks are cancelled when
still pending but never silently dropped — callers relying on the
flow's ``RoutingError``-driven channel-width retry see exactly the
exception the serial path would have raised.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple


def default_workers() -> int:
    """Worker count honouring ``REPRO_WORKERS`` (default: serial).

    Serial-by-default keeps unit tests and library callers free of
    process-pool surprises; the CLI and the experiment harness opt in
    explicitly.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


@dataclass(frozen=True)
class Task:
    """One unit of schedulable work.

    ``fn`` must be an importable module-level callable (the process
    pool pickles it by reference); ``args`` must be picklable.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    name: str = ""


class Scheduler:
    """Runs task batches serially, over a process pool, or — with
    ``use_threads=True`` — over a thread pool.

    The thread mode exists for tasks that are *not* picklable
    (closures, bound methods over live router state: the batched
    router's parallel-net negotiation) but release the GIL or are
    cheap enough to interleave.  It keeps the exact submission-order
    result and first-failure semantics of the process mode, so the
    two are drop-in interchangeable for deterministic tasks.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        use_threads: bool = False,
    ) -> None:
        self.workers = default_workers() if workers is None else max(
            1, int(workers)
        )
        self.use_threads = bool(use_threads)

    def effective_workers(self, n_tasks: int) -> int:
        """Pool size a batch of *n_tasks* would actually run with.

        Never more processes than there is work or hardware:
        oversubscribing cores only adds context-switch and memory
        pressure (results are order-locked, so this cannot change
        them).  ``1`` means the batch executes inline; callers use
        this to decide whether to ship shared objects or let workers
        rebuild them.  Thread pools are not capped by the core count:
        they exist for unpicklable or latency-hiding work, and the
        worker-count-independence tests must be able to exercise a
        real multi-thread pool on single-core CI boxes.
        """
        if self.use_threads:
            return max(1, min(self.workers, n_tasks))
        return max(1, min(self.workers, n_tasks, os.cpu_count() or 1))

    def run(
        self,
        tasks: Sequence[Task],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute *tasks*; results in submission order.

        ``on_result(index, result)`` — when given — is invoked in the
        calling process, in strict submission order, as each prefix of
        the batch completes.  Callers use it to checkpoint durable
        state incrementally (the campaign JSONL): when the process is
        killed mid-batch, every result already handed to ``on_result``
        was complete, and the unreported suffix is simply recomputed
        on resume.  The callback sees exactly the results ``run``
        returns, so it cannot perturb determinism.
        """
        if not tasks:
            return []
        n_workers = self.effective_workers(len(tasks))
        if n_workers <= 1:
            results = []
            for index, task in enumerate(tasks):
                result = task.fn(*task.args)
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
            return results
        results: List[Any] = [None] * len(tasks)
        pool_cls = (
            ThreadPoolExecutor if self.use_threads
            else ProcessPoolExecutor
        )
        with pool_cls(max_workers=n_workers) as pool:
            futures = [
                pool.submit(task.fn, *task.args) for task in tasks
            ]
            error: Optional[BaseException] = None
            for index, future in enumerate(futures):
                if error is not None:
                    future.cancel()
                    continue
                try:
                    results[index] = future.result()
                except BaseException as exc:  # first failure wins
                    error = exc
                    continue
                if on_result is not None:
                    on_result(index, results[index])
            if error is not None:
                raise error
        return results

    def map(
        self, fn: Callable[..., Any], args_list: Sequence[Tuple]
    ) -> List[Any]:
        """Convenience: one task per argument tuple."""
        return self.run([Task(fn, tuple(args)) for args in args_list])
