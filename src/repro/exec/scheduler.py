"""Deterministic fan-out of independent flow-stage tasks.

Compatibility facade over :mod:`repro.exec.jobs`, the transport-
agnostic job-graph core that now owns dispatching, pooling, and the
determinism contract.  :class:`Scheduler` keeps the original batch
API — construct with a worker count, call :meth:`run` on a list of
:class:`Task` — and delegates to :func:`repro.exec.jobs.run_tasks`,
so existing callers (and their bit-identical results at any worker
count) are untouched.

The unit of work is a :class:`Task`: a picklable module-level function
plus positional arguments.  :meth:`Scheduler.run` executes a batch and
returns the results **in submission order**, whatever the completion
order was — parallel runs are therefore bit-for-bit interchangeable
with serial runs as long as the tasks themselves are independent and
deterministic, which every flow stage is (they are seeded and share no
mutable state).

``workers <= 1`` executes inline in the calling process: no pool, no
pickling, identical code path for tests and for nested calls (a task
running inside a worker process never spawns its own pool).

Failure semantics: the first task (by submission order) that raised
propagates its original exception; later tasks are cancelled when
still pending but never silently dropped — callers relying on the
flow's ``RoutingError``-driven channel-width retry see exactly the
exception the serial path would have raised.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

# Task and default_workers moved to repro.exec.jobs; re-exported here
# so historical import paths keep working.
from repro.exec.jobs import (  # noqa: F401
    Task,
    default_workers,
    effective_workers,
    resolve_workers,
    run_tasks,
)


class Scheduler:
    """Runs task batches serially, over a process pool, or — with
    ``use_threads=True`` — over a thread pool.

    The thread mode exists for tasks that are *not* picklable
    (closures, bound methods over live router state: the batched
    router's parallel-net negotiation) but release the GIL or are
    cheap enough to interleave.  It keeps the exact submission-order
    result and first-failure semantics of the process mode, so the
    two are drop-in interchangeable for deterministic tasks.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        use_threads: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.use_threads = bool(use_threads)

    def effective_workers(self, n_tasks: int) -> int:
        """Pool size a batch of *n_tasks* would actually run with.

        See :func:`repro.exec.jobs.effective_workers`: capped by work
        and (for processes) hardware; ``1`` means inline execution.
        """
        return effective_workers(self.workers, n_tasks, self.use_threads)

    def run(
        self,
        tasks: Sequence[Task],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute *tasks*; results in submission order.

        ``on_result(index, result)`` fires in the calling process in
        strict submission order as each prefix completes — the
        incremental-checkpoint hook (see
        :meth:`repro.exec.jobs.JobGraph.wait`).
        """
        return run_tasks(
            tasks,
            workers=self.workers,
            use_threads=self.use_threads,
            on_result=on_result,
        )

    def map(
        self, fn: Callable[..., Any], args_list: Sequence[Tuple]
    ) -> List[Any]:
        """Convenience: one task per argument tuple."""
        return self.run([Task(fn, tuple(args)) for args in args_list])
