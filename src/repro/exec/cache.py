"""On-disk, hash-addressed memoization of flow-stage results.

Layout: ``<root>/<stage>/<key[:2]>/<key>.pkl`` where ``key`` is the
SHA-256 fingerprint of the stage's inputs (including the global
:data:`~repro.exec.fingerprint.FINGERPRINT_VERSION`).  One file per
entry keeps eviction and concurrent access trivial: writers write to a
temporary file in the same directory and ``os.replace`` it into place,
so readers never observe a torn entry, and two processes computing the
same entry simply race to an identical result.

Invalidation is purely key-driven — a changed circuit, architecture,
option, seed, or fingerprint version produces a different key and the
stale entry is never touched again.  ``clear()`` (or removing the
directory) is the only explicit invalidation.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro/stages``);
* ``REPRO_CACHE_DISABLE=1`` — turn every lookup into a miss and every
  store into a no-op (useful to A/B a cold path).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from repro.exec.fingerprint import code_fingerprint, fingerprint


def atomic_write_bytes(path: os.PathLike, data: bytes) -> None:
    """Write *data* to *path* so readers never observe a torn file.

    The tmp-file + ``os.replace`` idiom of :meth:`StageCache.put`,
    exposed for other durable artefacts (campaign JSONL checkpoints):
    the payload lands in a temporary file in the destination
    directory and is renamed into place, so a crash mid-write leaves
    either the old content or the new, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: os.PathLike, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_append_text(path: os.PathLike, text: str) -> None:
    """Append *text* to *path* with whole-file atomicity.

    Read-modify-replace rather than ``open(mode="a")``: a process
    killed mid-append must leave the previous complete file behind,
    not a torn final line — that is the contract campaign checkpoint
    resume relies on.  O(file size) per append, which is fine for the
    few-hundred-line JSONL checkpoints it exists for.
    """
    path = Path(path)
    try:
        existing = path.read_bytes()
    except FileNotFoundError:
        existing = b""
    atomic_write_bytes(path, existing + text.encode("utf-8"))


def default_cache_dir() -> Path:
    """Cache root honouring ``REPRO_CACHE_DIR``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "stages"


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`StageCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    #: Entries that existed on disk but failed to unpickle (truncated
    #: write from a killed worker, bit rot, stale module shape); each
    #: also counts as an error and a miss, and the file is unlinked.
    corrupt: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors
        self.corrupt += other.corrupt

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "corrupt": self.corrupt,
        }


class StageCache:
    """Persistent stage-result store addressed by input fingerprint.

    ``root=None`` uses :func:`default_cache_dir`; ``enabled=False`` (or
    ``REPRO_CACHE_DISABLE=1`` in the environment) makes the cache a
    transparent no-op so every call site can pass a cache
    unconditionally.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        enabled: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled and not os.environ.get(
            "REPRO_CACHE_DISABLE"
        )
        self.stats = CacheStats()

    # -- keys and paths -----------------------------------------------------

    @staticmethod
    def key(stage: str, *inputs: Any) -> str:
        """Cache key of *stage* applied to *inputs*.

        The package's own source digest participates, so editing any
        ``repro`` module invalidates every previously cached result —
        a stale entry can never masquerade as the current code's
        output.
        """
        return fingerprint(code_fingerprint(), stage, *inputs)

    def path(self, stage: str, key: str) -> Path:
        return self.root / stage / key[:2] / f"{key}.pkl"

    # -- primitive operations -------------------------------------------------

    def get(self, stage: str, key: str) -> Tuple[bool, Any]:
        """(hit, value); corrupt entries count as misses and are removed."""
        if not self.enabled:
            self.stats.misses += 1
            return False, None
        path = self.path(stage, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (MemoryError, RecursionError):
            # Transient resource exhaustion, not corruption: the
            # entry on disk may be perfectly fine, so it must not be
            # unlinked — and silently recomputing under the same
            # pressure would likely fail the same way.
            raise
        except Exception:
            # Torn write from a killed worker or an entry pickled
            # against a module that has since changed shape.  The
            # unpickler surfaces corruption as many exception types
            # beyond UnpicklingError — truncation raises EOFError,
            # flipped bytes raise ValueError / UnicodeDecodeError /
            # OverflowError, stale classes raise AttributeError or
            # ImportError — so anything short of a missing file or
            # resource exhaustion is treated as a miss: count it,
            # drop the entry, recompute.
            self.stats.errors += 1
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        try:
            # LRU bookkeeping for prune(): a hit marks the entry
            # recently used.  Best-effort — a read-only cache mount
            # still serves hits.
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return True, value

    def put(self, stage: str, key: str, value: Any) -> None:
        """Atomically store *value*; IO errors are swallowed (the cache
        is an accelerator, never a correctness dependency)."""
        if not self.enabled:
            return
        path = self.path(stage, key)
        try:
            atomic_write_bytes(
                path,
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            )
            self.stats.stores += 1
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError):
            # Unpicklable values degrade to "not cached", same as IO
            # errors — a failed store must never fail the flow.
            self.stats.errors += 1

    # -- memoization ----------------------------------------------------------

    def memoize(
        self,
        stage: str,
        inputs: Tuple[Any, ...],
        compute: Callable[[], Any],
    ) -> Tuple[Any, bool]:
        """Return ``(result, cache_hit)`` of *stage* on *inputs*.

        On a miss, *compute* runs and its result is stored before being
        returned, so a subsequent identical call is a hit.
        """
        if not self.enabled:
            # Skip the input fingerprinting entirely — hashing whole
            # circuits/placements is wasted work when nothing is kept.
            self.stats.misses += 1
            return compute(), False
        key = self.key(stage, *inputs)
        hit, value = self.get(stage, key)
        if hit:
            return value, True
        value = compute()
        self.put(stage, key, value)
        return value, False

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def n_entries(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def total_bytes(self) -> int:
        total = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-used entries until the cache fits
        *max_bytes*; returns ``(entries_removed, bytes_removed)``.

        Recency is file mtime, refreshed on every hit by :meth:`get`,
        so entries that keep hitting survive and entries orphaned by
        code or input changes (unreachable forever — their key will
        never be computed again) age out first.  Entries that vanish
        mid-scan (concurrent prune or clear) are skipped.
        """
        entries = []
        if self.root.exists():
            # sorted(): rglob yields OS order, and the recency sort
            # below is stable, so mtime *ties* would otherwise be
            # evicted in filesystem-dependent order.
            for path in sorted(self.root.rglob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        # Newest first; keep while the running total fits the budget.
        # Stable sort + sorted enumeration = deterministic tie-breaks.
        entries.sort(key=lambda e: e[0], reverse=True)
        kept = 0
        removed = removed_bytes = 0
        for _mtime, size, path in entries:
            if kept + size <= max_bytes:
                kept += size
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += size
        return removed, removed_bytes
