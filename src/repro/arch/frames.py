"""Frame-based configuration memory (the paper's stated next step).

Commercial FPGAs rewrite configuration memory in *frames* — the paper
(Section IV-C.1): "In current FPGAs, the reconfiguration granularity is
a collection of bits called a frame.  LUTs and routing memory cells
reside in different frames.  The next step in our research is to
implement TRoute on a commercial FPGA to assess the reduction it will
have in routing configuration frames ... We also plan to extend it to
allocate the small number of parameterized bits in a limited amount of
frames."

This module implements that model:

* routing bits are grouped into fixed-size frames laid out by fabric
  column (Virtex-style), LUT bits into separate frames;
* :func:`frames_touched` counts the frames a mode switch must rewrite
  for any set of changed bits;
* :class:`FrameAllocator` implements the paper's proposed optimisation:
  re-allocate the parameterised bits into as few frames as possible
  (a bin-packing over the free bit positions of each frame), giving
  the projected frame-level speed-up (the paper expects "roughly
  between 4x and 20x" for routing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import RoutingResourceGraph


@dataclass(frozen=True)
class FrameLayout:
    """Assignment of configuration bits to frames.

    ``frame_of_bit`` maps every routing bit id to a frame id; LUT
    frames occupy ids ``>= n_routing_frames`` (they never mix with
    routing bits, as on real devices).
    """

    frame_size: int
    n_routing_frames: int
    n_lut_frames: int
    frame_of_bit: Dict[int, int]

    @property
    def n_frames(self) -> int:
        return self.n_routing_frames + self.n_lut_frames

    def routing_frames_for(self, bits: Iterable[int]) -> Set[int]:
        """Frames containing any of the given routing bits."""
        return {self.frame_of_bit[b] for b in bits}


def build_frame_layout(
    arch: FpgaArchitecture,
    rrg: RoutingResourceGraph,
    frame_size: int = 256,
) -> FrameLayout:
    """Group configuration bits into column-major frames.

    Routing bits are sorted by the fabric x-coordinate of their
    switch's source node (a proxy for the configuration column the
    switch lives in on a real device) and packed ``frame_size`` bits
    per frame.  LUT bits get ``ceil(column bits / frame_size)`` frames
    per column.
    """
    if frame_size < 1:
        raise ValueError("frame size must be positive")
    # Collect each bit's column from the switch's source node.
    column_of_bit: Dict[int, int] = {}
    for src in range(rrg.n_nodes):
        x = rrg.node_x[src]
        for _dst, bit in rrg.adjacency[src]:
            if bit >= 0 and bit not in column_of_bit:
                column_of_bit[bit] = x
    ordered = sorted(
        column_of_bit, key=lambda b: (column_of_bit[b], b)
    )
    frame_of_bit = {
        bit: index // frame_size for index, bit in enumerate(ordered)
    }
    n_routing_frames = (
        (len(ordered) + frame_size - 1) // frame_size
        if ordered
        else 0
    )
    lut_bits_per_column = arch.ny * arch.lut_bits_per_clb()
    lut_frames_per_column = max(
        1, math.ceil(lut_bits_per_column / frame_size)
    )
    n_lut_frames = arch.nx * lut_frames_per_column
    return FrameLayout(
        frame_size=frame_size,
        n_routing_frames=n_routing_frames,
        n_lut_frames=n_lut_frames,
        frame_of_bit=frame_of_bit,
    )


@dataclass(frozen=True)
class FrameCost:
    """Frames rewritten on one mode switch."""

    lut_frames: int
    routing_frames: int

    @property
    def total(self) -> int:
        return self.lut_frames + self.routing_frames


def mdr_frame_cost(layout: FrameLayout) -> FrameCost:
    """MDR rewrites every frame of the region."""
    return FrameCost(
        lut_frames=layout.n_lut_frames,
        routing_frames=layout.n_routing_frames,
    )


def dcs_frame_cost(
    layout: FrameLayout, parameterized_bits: Set[int]
) -> FrameCost:
    """DCS rewrites all LUT frames + frames holding parameterised bits.

    Matches the paper's accounting: all LUTs are rewritten; only the
    routing frames containing at least one mode-dependent bit are
    touched.
    """
    return FrameCost(
        lut_frames=layout.n_lut_frames,
        routing_frames=len(
            layout.routing_frames_for(parameterized_bits)
        ),
    )


class FrameAllocator:
    """Pack parameterised bits into few frames (the paper's proposal).

    On a real device the *placement* of configuration bits is fixed,
    but the router has freedom in *which* switches it uses; the paper
    proposes steering the parameterised bits into a limited number of
    frames.  This class computes the idealised bound of that
    optimisation: the minimum number of frames that could hold the
    parameterised bits if the allocator had full freedom
    (``ceil(n_bits / frame_size)``), and a *locality-constrained*
    estimate where bits may only move within their fabric column
    (switches cannot leave their physical column).
    """

    def __init__(self, layout: FrameLayout,
                 rrg: RoutingResourceGraph) -> None:
        self.layout = layout
        self.rrg = rrg
        self._column_of_bit: Dict[int, int] = {}
        for src in range(rrg.n_nodes):
            x = rrg.node_x[src]
            for _dst, bit in rrg.adjacency[src]:
                if bit >= 0 and bit not in self._column_of_bit:
                    self._column_of_bit[bit] = x

    def ideal_frames(self, parameterized_bits: Set[int]) -> int:
        """Lower bound: full freedom to co-locate bits."""
        return math.ceil(
            len(parameterized_bits) / self.layout.frame_size
        )

    def column_constrained_frames(
        self, parameterized_bits: Set[int]
    ) -> int:
        """Bits may only be packed within their own column."""
        per_column: Dict[int, int] = {}
        for bit in parameterized_bits:
            column = self._column_of_bit[bit]
            per_column[column] = per_column.get(column, 0) + 1
        return sum(
            math.ceil(count / self.layout.frame_size)
            for count in per_column.values()
        )

    def report(self, parameterized_bits: Set[int]) -> Dict[str, int]:
        """All three frame counts for one mode switch."""
        return {
            "as_routed": len(
                self.layout.routing_frames_for(parameterized_bits)
            ),
            "column_packed": self.column_constrained_frames(
                parameterized_bits
            ),
            "ideal": self.ideal_frames(parameterized_bits),
        }
