"""Configuration-memory model.

A *configuration* is the full state of the reconfigurable region's
configuration memory: per-logic-block LUT bits (truth table + output
select) and one bit per programmable routing switch.  The paper's
reconfiguration-time metric is "the number of bits that needs to be
rewritten in the configuration memory"; this module provides the bit
sets that every variant of that metric (MDR / Diff / DCS) is computed
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import RoutingResourceGraph


@dataclass
class Configuration:
    """One mode's configuration of the region.

    ``routing_bits`` is the set of switch bits that are *on*; all other
    routing bits are zero (the FPGA's default pulled state).
    ``lut_tables`` maps a CLB position to its truth-table bit mask and
    register-select flag; unlisted CLBs hold the all-zero (unused) LUT.
    """

    arch: FpgaArchitecture
    routing_bits: FrozenSet[int] = frozenset()
    lut_tables: Dict[Tuple[int, int], Tuple[int, bool]] = field(
        default_factory=dict
    )

    def lut_bit_vector(self, pos: Tuple[int, int]) -> List[bool]:
        """All ``2**k + 1`` configuration bits of the block at *pos*."""
        bits_per_lut = 1 << self.arch.k
        table, registered = self.lut_tables.get(pos, (0, False))
        vector = [bool(table >> i & 1) for i in range(bits_per_lut)]
        vector.append(registered)
        return vector

    def routing_bit_count(self) -> int:
        """Number of switch bits that are on."""
        return len(self.routing_bits)


def routing_bits_of_edges(
    edges: Iterable[Tuple[int, int, int]]
) -> FrozenSet[int]:
    """Extract the on-bits from routed edges ``(src, dst, bit)``.

    Internal (non-configurable) edges carry bit ``-1`` and are skipped.
    """
    return frozenset(bit for _src, _dst, bit in edges if bit >= 0)


def differing_routing_bits(
    configs: Sequence[Configuration],
) -> Set[int]:
    """Routing bits whose value is not constant across *configs*.

    With all-off as the default state, a bit differs iff it is on in at
    least one mode but not in all modes.
    """
    if not configs:
        return set()
    union: Set[int] = set()
    intersection: Set[int] = set(configs[0].routing_bits)
    for config in configs:
        union |= config.routing_bits
        intersection &= config.routing_bits
    return union - intersection


def differing_lut_bits(configs: Sequence[Configuration]) -> int:
    """Count LUT configuration bits that differ across *configs*.

    The paper always rewrites every LUT bit, but reports (Section
    IV-C.1) that counting only differing LUT bits would make DCS look
    even better; this function supports that analysis.
    """
    if not configs:
        return 0
    arch = configs[0].arch
    positions: Set[Tuple[int, int]] = set()
    for config in configs:
        positions.update(config.lut_tables)
    count = 0
    for pos in positions:
        vectors = [config.lut_bit_vector(pos) for config in configs]
        for bit_values in zip(*vectors):
            if len(set(bit_values)) > 1:
                count += 1
    return count


@dataclass(frozen=True)
class RegionBitBudget:
    """Static bit capacity of the reconfigurable region."""

    lut_bits: int
    routing_bits: int

    @property
    def total(self) -> int:
        return self.lut_bits + self.routing_bits


def region_budget(
    arch: FpgaArchitecture, rrg: RoutingResourceGraph
) -> RegionBitBudget:
    """Bit capacity of the whole region (what MDR rewrites per switch)."""
    return RegionBitBudget(
        lut_bits=arch.total_lut_bits(),
        routing_bits=rrg.n_bits,
    )
