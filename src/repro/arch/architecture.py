"""FPGA architecture description and geometry.

The architecture mirrors VPR's ``4lut_sanitized.arch`` used in the
paper: logic blocks with one K-input LUT and one flip-flop, IO pads on
the perimeter, and routing channels whose wire segments span a single
logic block.  Channel width and pad capacity are parameters.

Coordinate system (VPR convention):

* logic-block tiles at ``(x, y)`` with ``1 <= x <= nx``, ``1 <= y <= ny``;
* IO pad locations on the perimeter ring (``x`` in ``{0, nx+1}`` or
  ``y`` in ``{0, ny+1}``, corners excluded), each holding ``io_rat``
  pad slots;
* horizontal channel ``chanx(x, y)`` above row ``y`` (``0 <= y <= ny``),
  vertical channel ``chany(x, y)`` right of column ``x``
  (``0 <= x <= nx``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Site:
    """One placement site: a logic-block tile or one IO pad slot."""

    kind: str  # "clb" or "pad"
    x: int
    y: int
    slot: int = 0  # pad slot index within the location (0 for CLBs)

    def pos(self) -> Tuple[int, int]:
        """Grid position used by wire-length estimation."""
        return (self.x, self.y)


@dataclass(frozen=True)
class FpgaArchitecture:
    """Parameters and geometry of the island-style FPGA.

    Parameters
    ----------
    nx, ny:
        Logic-block grid dimensions.
    k:
        LUT input count (4 in the paper's architecture).
    channel_width:
        Tracks per routing channel (sized 20% above minimum in the
        paper's methodology; see :func:`size_for_circuits`).
    fc_in / fc_out:
        Fraction of channel tracks each input/output pin can reach
        through its connection block.
    io_rat:
        IO pad slots per perimeter location (VPR default 2).
    """

    nx: int
    ny: int
    k: int = 4
    channel_width: int = 12
    fc_in: float = 1.0
    fc_out: float = 1.0
    io_rat: int = 2

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid must be at least 1x1")
        if self.channel_width < 1:
            raise ValueError("channel width must be positive")
        if not 0.0 < self.fc_in <= 1.0 or not 0.0 < self.fc_out <= 1.0:
            raise ValueError("Fc fractions must be in (0, 1]")
        if self.io_rat < 1:
            raise ValueError("io_rat must be positive")

    # -- capacity ---------------------------------------------------------

    @property
    def n_clbs(self) -> int:
        """Number of logic-block tiles."""
        return self.nx * self.ny

    @property
    def n_pad_locations(self) -> int:
        """Perimeter IO locations (corners excluded)."""
        return 2 * self.nx + 2 * self.ny

    @property
    def n_pads(self) -> int:
        """Total IO pad slots."""
        return self.n_pad_locations * self.io_rat

    def lut_bits_per_clb(self) -> int:
        """Configuration bits in one logic block.

        ``2**k`` truth-table bits plus one bit selecting the registered
        or combinational output (paper Section II-B).
        """
        return (1 << self.k) + 1

    def total_lut_bits(self) -> int:
        """LUT configuration bits of the whole reconfigurable region."""
        return self.n_clbs * self.lut_bits_per_clb()

    def tracks_for_pin(self, pin_index: int, fc: float) -> List[int]:
        """Deterministic set of tracks a connection-block pin reaches.

        Tracks are spread with a stride so different pins start at
        different offsets (VPR's connection-block pattern).
        """
        w = self.channel_width
        n_tracks = max(1, round(fc * w))
        if n_tracks >= w:
            return list(range(w))
        stride = w / n_tracks
        offset = (pin_index * 7) % w
        return sorted({(offset + int(i * stride)) % w
                       for i in range(n_tracks)})

    # -- sites --------------------------------------------------------------

    def clb_sites(self) -> List[Site]:
        """All logic-block placement sites."""
        return [
            Site("clb", x, y)
            for x in range(1, self.nx + 1)
            for y in range(1, self.ny + 1)
        ]

    def pad_locations(self) -> List[Tuple[int, int]]:
        """Perimeter IO locations in clockwise order."""
        locations = []
        for x in range(1, self.nx + 1):
            locations.append((x, 0))
            locations.append((x, self.ny + 1))
        for y in range(1, self.ny + 1):
            locations.append((0, y))
            locations.append((self.nx + 1, y))
        return locations

    def pad_sites(self) -> List[Site]:
        """All IO pad slots."""
        return [
            Site("pad", x, y, slot)
            for (x, y) in self.pad_locations()
            for slot in range(self.io_rat)
        ]

    def all_sites(self) -> List[Site]:
        """All placement sites (CLBs then pads)."""
        return self.clb_sites() + self.pad_sites()

    def contains_clb(self, x: int, y: int) -> bool:
        """True when (x, y) is a logic-block tile."""
        return 1 <= x <= self.nx and 1 <= y <= self.ny

    # -- channels -----------------------------------------------------------

    def chanx_positions(self) -> Iterable[Tuple[int, int]]:
        """(x, y) pairs of horizontal channel segments."""
        for y in range(0, self.ny + 1):
            for x in range(1, self.nx + 1):
                yield (x, y)

    def chany_positions(self) -> Iterable[Tuple[int, int]]:
        """(x, y) pairs of vertical channel segments."""
        for x in range(0, self.nx + 1):
            for y in range(1, self.ny + 1):
                yield (x, y)

    def n_channel_segments(self) -> int:
        """Total channel segments (both orientations)."""
        n_chanx = self.nx * (self.ny + 1)
        n_chany = self.ny * (self.nx + 1)
        return n_chanx + n_chany


def size_for_circuits(
    n_blocks: int,
    n_ios: int,
    k: int = 4,
    channel_width: int = 12,
    slack: float = 1.2,
    io_rat: int = 2,
    fc_in: float = 1.0,
    fc_out: float = 1.0,
) -> FpgaArchitecture:
    """Size a square FPGA for the given workload.

    Follows the paper's methodology: the square area is chosen ``slack``
    times (default 20% more than) the minimum needed for *n_blocks*
    logic blocks; the perimeter must offer at least *n_ios* pads.  The
    channel width is supplied by the caller (the experiment harness
    derives it from the minimum routable width, again +20%).
    """
    if n_blocks < 1:
        raise ValueError("need at least one block")
    side = max(1, math.ceil(math.sqrt(n_blocks * slack)))
    # Grow until IO capacity suffices as well.
    while 4 * side * io_rat < n_ios:
        side += 1
    return FpgaArchitecture(
        nx=side,
        ny=side,
        k=k,
        channel_width=channel_width,
        io_rat=io_rat,
        fc_in=fc_in,
        fc_out=fc_out,
    )
