"""Routing-resource graph (RRG) construction.

The RRG is the standard representation of an FPGA's routing fabric
(Betz/Rose/Marquardt): a directed graph whose nodes are wires and pins
and whose edges are programmable switches.  TRoute in the paper
explicitly works on this representation, which keeps the tool flow
architecture-independent.

Node kinds:

* ``OPIN`` — logic-block or pad output pin (route sources),
* ``IPIN`` — input pin reached through a connection-block switch,
* ``SINK`` — per-block logical sink; all IPINs of a block lead to it,
  so the router exploits the logical equivalence of LUT inputs,
* ``WIRE`` — one unit-length channel segment track.

Every programmable switch owns one configuration-memory bit.  The
bidirectional switch-box connections share a single bit between their
two directed edges (a pass-transistor switch).  IPIN→SINK edges are
internal and carry no bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.architecture import FpgaArchitecture, Site

OPIN = 0
IPIN = 1
SINK = 2
WIRE = 3

KIND_NAMES = {OPIN: "OPIN", IPIN: "IPIN", SINK: "SINK", WIRE: "WIRE"}


@dataclass
class RoutingResourceGraph:
    """The routing fabric as arrays indexed by integer node id."""

    arch: FpgaArchitecture
    node_kind: List[int] = field(default_factory=list)
    node_x: List[int] = field(default_factory=list)
    node_y: List[int] = field(default_factory=list)
    node_capacity: List[int] = field(default_factory=list)
    node_label: List[str] = field(default_factory=list)
    # adjacency: per node, list of (target node, bit id)
    adjacency: List[List[Tuple[int, int]]] = field(default_factory=list)
    n_bits: int = 0
    # lookup tables
    clb_opin: Dict[Tuple[int, int], int] = field(default_factory=dict)
    clb_ipin: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    clb_sink: Dict[Tuple[int, int], int] = field(default_factory=dict)
    pad_opin: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    pad_ipin: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    pad_sink: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    chanx: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    chany: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    # Lazily built flat views of the graph for the router's inner loop
    # (the graph is immutable once build_rrg returns, so they are
    # built at most once).  Excluded from comparison; pickling them is
    # harmless but pointless, so __getstate__ drops them.
    _csr: Optional[Tuple[List[int], List[int], List[int]]] = field(
        default=None, repr=False, compare=False
    )
    _base_cost: Optional[List[float]] = field(
        default=None, repr=False, compare=False
    )

    # -- construction helpers ----------------------------------------------

    def _add_node(self, kind: int, x: int, y: int, capacity: int,
                  label: str) -> int:
        node = len(self.node_kind)
        self.node_kind.append(kind)
        self.node_x.append(x)
        self.node_y.append(y)
        self.node_capacity.append(capacity)
        self.node_label.append(label)
        self.adjacency.append([])
        return node

    def _add_switch(self, src: int, dst: int) -> int:
        """Directed programmable switch with a fresh config bit."""
        bit = self.n_bits
        self.n_bits += 1
        self.adjacency[src].append((dst, bit))
        return bit

    def _add_bidir_switch(self, a: int, b: int) -> int:
        """Bidirectional switch: two directed edges sharing one bit."""
        bit = self.n_bits
        self.n_bits += 1
        self.adjacency[a].append((b, bit))
        self.adjacency[b].append((a, bit))
        return bit

    def _add_internal_edge(self, src: int, dst: int) -> None:
        """Non-configurable edge (no bit), e.g. IPIN to SINK."""
        self.adjacency[src].append((dst, -1))

    # -- queries ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_kind)

    def n_edges(self) -> int:
        return sum(len(a) for a in self.adjacency)

    def source_node(self, site: Site) -> int:
        """Route source node for a cell placed on *site*."""
        if site.kind == "clb":
            return self.clb_opin[(site.x, site.y)]
        return self.pad_opin[(site.x, site.y, site.slot)]

    def sink_node(self, site: Site) -> int:
        """Route sink node for a cell placed on *site*."""
        if site.kind == "clb":
            return self.clb_sink[(site.x, site.y)]
        return self.pad_sink[(site.x, site.y, site.slot)]

    def describe(self, node: int) -> str:
        """Human-readable node description for diagnostics."""
        return (
            f"{KIND_NAMES[self.node_kind[node]]}"
            f"({self.node_x[node]},{self.node_y[node]})"
            f"[{self.node_label[node]}]"
        )

    # -- flat views for the router's inner loop -----------------------------

    def neighbor_arrays(
        self,
    ) -> Tuple[List[int], List[int], List[int]]:
        """CSR form of the adjacency: ``(row_ptr, edge_dst, edge_bit)``.

        Node *n*'s out-edges are ``edge_dst[row_ptr[n]:row_ptr[n+1]]``
        (same order as ``adjacency[n]``, so searches over either view
        make identical tie-breaking decisions).  Scanning flat lists
        avoids a tuple unpack per edge in PathFinder's relaxation loop.
        """
        if self._csr is None:
            row_ptr = [0]
            edge_dst: List[int] = []
            edge_bit: List[int] = []
            for neighbors in self.adjacency:
                for dst, bit in neighbors:
                    edge_dst.append(dst)
                    edge_bit.append(bit)
                row_ptr.append(len(edge_dst))
            self._csr = (row_ptr, edge_dst, edge_bit)
        return self._csr

    def base_cost_array(self) -> List[float]:
        """Per-node intrinsic cost (the unit-delay model): 0 for SINKs,
        1 for every real resource — precomputed so the router never
        branches on node kind to price a node."""
        if self._base_cost is None:
            self._base_cost = [
                0.0 if kind == SINK else 1.0
                for kind in self.node_kind
            ]
        return self._base_cost

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_csr"] = None
        state["_base_cost"] = None
        return state


def build_rrg(arch: FpgaArchitecture) -> RoutingResourceGraph:
    """Construct the routing-resource graph for *arch*.

    The fabric follows the paper's architecture file: unit-length
    segments, disjoint (planar) switch boxes, connection-block
    flexibility ``fc_in``/``fc_out``.
    """
    g = RoutingResourceGraph(arch)
    w = arch.channel_width

    # Channel wire nodes.
    for (x, y) in arch.chanx_positions():
        for t in range(w):
            g.chanx[(x, y, t)] = g._add_node(
                WIRE, x, y, 1, f"chanx.t{t}"
            )
    for (x, y) in arch.chany_positions():
        for t in range(w):
            g.chany[(x, y, t)] = g._add_node(
                WIRE, x, y, 1, f"chany.t{t}"
            )

    # Logic-block pins.
    for x in range(1, arch.nx + 1):
        for y in range(1, arch.ny + 1):
            g.clb_opin[(x, y)] = g._add_node(OPIN, x, y, 1, "clb.out")
            g.clb_sink[(x, y)] = g._add_node(
                SINK, x, y, arch.k, "clb.sink"
            )
            for pin in range(arch.k):
                node = g._add_node(IPIN, x, y, 1, f"clb.in{pin}")
                g.clb_ipin[(x, y, pin)] = node
                g._add_internal_edge(node, g.clb_sink[(x, y)])

    # Pad pins.
    for (x, y) in arch.pad_locations():
        for slot in range(arch.io_rat):
            g.pad_opin[(x, y, slot)] = g._add_node(
                OPIN, x, y, 1, f"pad{slot}.out"
            )
            sink = g._add_node(SINK, x, y, 1, f"pad{slot}.sink")
            g.pad_sink[(x, y, slot)] = sink
            ipin = g._add_node(IPIN, x, y, 1, f"pad{slot}.in")
            g.pad_ipin[(x, y, slot)] = ipin
            g._add_internal_edge(ipin, sink)

    # Connection blocks for CLBs.
    #
    # Input pin p sits on side p mod 4 (bottom, top, left, right);
    # the output pin reaches the channel above and to the right.
    for x in range(1, arch.nx + 1):
        for y in range(1, arch.ny + 1):
            opin = g.clb_opin[(x, y)]
            for track in arch.tracks_for_pin(0, arch.fc_out):
                g._add_switch(opin, g.chanx[(x, y, track)])
                g._add_switch(opin, g.chany[(x, y, track)])
            for pin in range(arch.k):
                ipin = g.clb_ipin[(x, y, pin)]
                side = pin % 4
                if side == 0:
                    wires = [g.chanx[(x, y - 1, t)]
                             for t in arch.tracks_for_pin(pin, arch.fc_in)]
                elif side == 1:
                    wires = [g.chanx[(x, y, t)]
                             for t in arch.tracks_for_pin(pin, arch.fc_in)]
                elif side == 2:
                    wires = [g.chany[(x - 1, y, t)]
                             for t in arch.tracks_for_pin(pin, arch.fc_in)]
                else:
                    wires = [g.chany[(x, y, t)]
                             for t in arch.tracks_for_pin(pin, arch.fc_in)]
                for wire in wires:
                    g._add_switch(wire, ipin)

    # Connection blocks for pads.
    for (x, y) in arch.pad_locations():
        if y == 0:
            channel = [("x", x, 0)]
        elif y == arch.ny + 1:
            channel = [("x", x, arch.ny)]
        elif x == 0:
            channel = [("y", 0, y)]
        else:
            channel = [("y", arch.nx, y)]
        for slot in range(arch.io_rat):
            opin = g.pad_opin[(x, y, slot)]
            ipin = g.pad_ipin[(x, y, slot)]
            for orient, cx, cy in channel:
                table = g.chanx if orient == "x" else g.chany
                for track in arch.tracks_for_pin(slot, arch.fc_out):
                    g._add_switch(opin, table[(cx, cy, track)])
                for track in arch.tracks_for_pin(slot, arch.fc_in):
                    g._add_switch(table[(cx, cy, track)], ipin)

    # Wilton-style switch boxes at every channel junction.
    #
    # Junction (x, y) joins chanx(x, y) / chanx(x+1, y) horizontally
    # and chany(x, y) / chany(x, y+1) vertically.  Straight-through
    # connections keep their track; turning connections rotate the
    # track by one.  (A purely disjoint box would partition the fabric
    # into W isolated track planes, which breaks routability when the
    # connection blocks have fractional Fc.)
    # Straight connections preserve the track.  Two of the four turn
    # types rotate by one, the other two do not: rotating *every* turn
    # would make each turn flip track parity, which for even W splits
    # the fabric into two unreachable halves (a classic switch-box
    # design pitfall).
    _ROTATING_TURNS = {
        frozenset(("W", "S")),
        frozenset(("E", "N")),
    }

    def _track_map(side_a: str, side_b: str, t: int) -> int:
        pair = frozenset((side_a, side_b))
        if pair in _ROTATING_TURNS:
            return (t + 1) % w
        return t

    for x in range(0, arch.nx + 1):
        for y in range(0, arch.ny + 1):
            incident: List[Tuple[str, Dict, Tuple[int, int]]] = []
            if x >= 1 and (x, y, 0) in g.chanx:
                incident.append(("W", g.chanx, (x, y)))
            if (x + 1, y, 0) in g.chanx:
                incident.append(("E", g.chanx, (x + 1, y)))
            if y >= 1 and (x, y, 0) in g.chany:
                incident.append(("S", g.chany, (x, y)))
            if (x, y + 1, 0) in g.chany:
                incident.append(("N", g.chany, (x, y + 1)))
            for i in range(len(incident)):
                for j in range(i + 1, len(incident)):
                    side_a, table_a, pos_a = incident[i]
                    side_b, table_b, pos_b = incident[j]
                    for t in range(w):
                        u = _track_map(side_a, side_b, t)
                        g._add_bidir_switch(
                            table_a[pos_a + (t,)],
                            table_b[pos_b + (u,)],
                        )

    return g


def routing_bits_total(g: RoutingResourceGraph) -> int:
    """All routing configuration bits of the region (MDR rewrites these)."""
    return g.n_bits
