"""Island-style FPGA architecture model.

Models the paper's target device (VPR's ``4lut_sanitized.arch``): a
square grid of logic blocks — each one K-input LUT plus one flip-flop —
surrounded by IO pads, with unit-length wire segments in the routing
channels.

* :mod:`repro.arch.architecture` — grid geometry, placement sites,
  sizing rules (the paper sizes area and channel width 20% above the
  minimum).
* :mod:`repro.arch.rrg` — the routing-resource graph: wires, pins and
  programmable switches, each switch owning one configuration bit.
* :mod:`repro.arch.bitstream` — the configuration-memory model used for
  all reconfiguration-time accounting (LUT bits vs routing bits).
"""

from repro.arch.architecture import FpgaArchitecture, Site, size_for_circuits
from repro.arch.frames import FrameAllocator, FrameLayout, build_frame_layout
from repro.arch.rrg import RoutingResourceGraph, build_rrg

__all__ = [
    "FpgaArchitecture",
    "Site",
    "size_for_circuits",
    "RoutingResourceGraph",
    "build_rrg",
    "FrameAllocator",
    "FrameLayout",
    "build_frame_layout",
]
