"""Minimum-channel-width search (the paper's sizing methodology).

Paper Section IV-B: "the square area of the FPGA and the channel width
were both chosen 20% bigger than the minimum needed.  This is done to
allow relaxed routing."  Finding the minimum channel width is the
classic VPR experiment: place once, then binary-search the narrowest
channel the router can still complete.

:func:`minimum_channel_width` runs that search for a set of mode
circuits (each mode must route in the shared region, as both MDR and
DCS require); :func:`paper_channel_width` adds the 20% slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import Placement, place_circuit
from repro.route.router import RoutingError
from repro.route.troute import route_lut_circuit


@dataclass(frozen=True)
class WidthSearchResult:
    """Outcome of a minimum-channel-width search."""

    minimum_width: int
    attempts: Tuple[Tuple[int, bool], ...]  # (width, routable)

    def n_routings(self) -> int:
        return len(self.attempts)


def _routable(
    circuits: Sequence[LutCircuit],
    placements: Sequence[Placement],
    arch: FpgaArchitecture,
    width: int,
    max_iterations: int,
) -> bool:
    """Can every mode route in the region at *width* tracks?"""
    trial = FpgaArchitecture(
        nx=arch.nx, ny=arch.ny, k=arch.k,
        channel_width=width,
        fc_in=arch.fc_in, fc_out=arch.fc_out,
        io_rat=arch.io_rat,
    )
    rrg = build_rrg(trial)
    for circuit, placement in zip(circuits, placements):
        # Re-bind the placement to the trial architecture: sites are
        # grid positions, which do not depend on channel width.
        rebound = Placement(
            arch=trial, sites=placement.sites, cost=placement.cost
        )
        try:
            route_lut_circuit(
                circuit, rebound, rrg,
                max_iterations=max_iterations,
            )
        except RoutingError:
            return False
    return True


def minimum_channel_width(
    circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    max_width: int = 64,
    router_max_iterations: int = 24,
) -> WidthSearchResult:
    """Binary-search the minimum routable channel width.

    The circuits are placed once (at the grid of *arch*; placement is
    channel-width independent in the VPR cost model), then routed at
    candidate widths: doubling up from the architecture's width until
    routable, then bisecting down.  Each mode must route separately in
    the region, matching how both flows use it.
    """
    if not circuits:
        raise ValueError("need at least one circuit")
    schedule = schedule or AnnealingSchedule(inner_num=0.3)
    placements = [
        place_circuit(c, arch, seed=seed + i, schedule=schedule)
        for i, c in enumerate(circuits)
    ]
    attempts: List[Tuple[int, bool]] = []

    def try_width(width: int) -> bool:
        ok = _routable(
            circuits, placements, arch, width,
            router_max_iterations,
        )
        attempts.append((width, ok))
        return ok

    # Find a routable upper bound.
    hi = arch.channel_width
    while not try_width(hi):
        if hi >= max_width:
            raise RoutingError(
                f"unroutable even at channel width {max_width}"
            )
        hi = min(max_width, hi * 2)
    # Find the narrowest failing width below it.
    lo = 1
    if try_width(lo):
        return WidthSearchResult(1, tuple(attempts))
    # Invariant: lo unroutable < minimum <= hi routable.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if try_width(mid):
            hi = mid
        else:
            lo = mid
    return WidthSearchResult(hi, tuple(attempts))


def paper_channel_width(
    circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    slack: float = 1.2,
    **search_kwargs,
) -> int:
    """The paper's rule: minimum channel width plus 20% slack."""
    if slack < 1.0:
        raise ValueError("slack must be >= 1.0")
    result = minimum_channel_width(circuits, arch, **search_kwargs)
    return max(result.minimum_width + 1,
               int(round(result.minimum_width * slack)))
