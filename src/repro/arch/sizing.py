"""Minimum-channel-width search (the paper's sizing methodology).

Paper Section IV-B: "the square area of the FPGA and the channel width
were both chosen 20% bigger than the minimum needed.  This is done to
allow relaxed routing."  Finding the minimum channel width is the
classic VPR experiment: place once, then binary-search the narrowest
channel the router can still complete.

:func:`minimum_channel_width` runs that search for a set of mode
circuits (each mode must route in the shared region, as both MDR and
DCS require); :func:`paper_channel_width` adds the 20% slack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import Placement, place_circuit
from repro.route.router import RoutingError
from repro.route.troute import route_lut_circuit


@dataclass(frozen=True)
class WidthSearchResult:
    """Outcome of a minimum-channel-width search."""

    minimum_width: int
    attempts: Tuple[Tuple[int, bool], ...]  # (width, routable)

    def n_routings(self) -> int:
        return len(self.attempts)


def _routable(
    circuits: Sequence[LutCircuit],
    placements: Sequence[Placement],
    arch: FpgaArchitecture,
    width: int,
    max_iterations: int,
) -> bool:
    """Can every mode route in the region at *width* tracks?"""
    trial = FpgaArchitecture(
        nx=arch.nx, ny=arch.ny, k=arch.k,
        channel_width=width,
        fc_in=arch.fc_in, fc_out=arch.fc_out,
        io_rat=arch.io_rat,
    )
    rrg = build_rrg(trial)
    for circuit, placement in zip(circuits, placements):
        # Re-bind the placement to the trial architecture: sites are
        # grid positions, which do not depend on channel width.
        rebound = Placement(
            arch=trial, sites=placement.sites, cost=placement.cost
        )
        try:
            route_lut_circuit(
                circuit, rebound, rrg,
                max_iterations=max_iterations,
            )
        except RoutingError:
            return False
    return True


def minimum_channel_width(
    circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    max_width: int = 64,
    router_max_iterations: int = 24,
) -> WidthSearchResult:
    """Binary-search the minimum routable channel width.

    The circuits are placed once (at the grid of *arch*; placement is
    channel-width independent in the VPR cost model), then routed at
    candidate widths: doubling up from the architecture's width until
    routable, then bisecting down.  Each mode must route separately in
    the region, matching how both flows use it.
    """
    if not circuits:
        raise ValueError("need at least one circuit")
    schedule = schedule or AnnealingSchedule(inner_num=0.3)
    placements = [
        place_circuit(c, arch, seed=seed + i, schedule=schedule)
        for i, c in enumerate(circuits)
    ]
    attempts: List[Tuple[int, bool]] = []
    tried: Dict[int, bool] = {}

    def try_width(width: int) -> bool:
        # A width can come up twice (e.g. the doubling loop clamping
        # `hi` onto a width the bisection later probes, or a fabric
        # already routable at width 1 re-probing the lower bound);
        # each full routing attempt is expensive, so memoize instead
        # of re-routing and keep `attempts` to the real work done.
        if width in tried:
            return tried[width]
        ok = _routable(
            circuits, placements, arch, width,
            router_max_iterations,
        )
        tried[width] = ok
        attempts.append((width, ok))
        return ok

    # Find a routable upper bound.
    hi = arch.channel_width
    while not try_width(hi):
        if hi >= max_width:
            raise RoutingError(
                f"unroutable even at channel width {max_width}"
            )
        hi = min(max_width, hi * 2)
    # Find the narrowest failing width below it.
    lo = 1
    if try_width(lo):
        return WidthSearchResult(1, tuple(attempts))
    # Invariant: lo unroutable < minimum <= hi routable.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if try_width(mid):
            hi = mid
        else:
            lo = mid
    return WidthSearchResult(hi, tuple(attempts))


def paper_channel_width(
    circuits: Sequence[LutCircuit],
    arch: FpgaArchitecture,
    slack: float = 1.2,
    **search_kwargs,
) -> int:
    """The paper's rule: minimum channel width plus 20% slack.

    The slack is rounded *up*: ``round`` would owe its result to
    banker's rounding (``round(4.5) == 4``), which can land below the
    paper's "20% bigger than the minimum" rule.  The epsilon guards
    the other direction — binary floats can land a hair above an
    exact product (``15 * 1.2 == 18.000000000000004``) and must not
    ceil one track past it.
    """
    if slack < 1.0:
        raise ValueError("slack must be >= 1.0")
    result = minimum_channel_width(circuits, arch, **search_kwargs)
    width = max(
        result.minimum_width + 1,
        math.ceil(result.minimum_width * slack - 1e-9),
    )
    assert width > result.minimum_width
    return width
