"""Markdown implementation reports.

:func:`implementation_report` condenses one
:class:`~repro.core.flow.MultiModeResult` into the numbers a user
would check after a run: region and architecture, merge statistics,
and the paper's three headline metrics (reconfiguration bits,
LUT/routing breakdown, per-mode wire length).
"""

from __future__ import annotations

from typing import List

from repro.core.flow import MultiModeResult


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def implementation_report(result: MultiModeResult) -> str:
    """Render a Markdown report of one multi-mode implementation."""
    arch = result.arch
    lines = [
        f"# Multi-mode implementation report: {result.name}",
        "",
        "## Region",
        "",
        f"- grid: {arch.nx} x {arch.ny} logic blocks "
        f"(K={arch.k} LUTs)",
        f"- channel width: {arch.channel_width}",
        f"- LUT configuration bits: {arch.total_lut_bits()}",
        "",
        "## Reconfiguration cost (bits rewritten per mode switch)",
        "",
    ]
    rows = [[
        "MDR (full region)",
        str(result.mdr.cost.lut_bits),
        str(result.mdr.cost.routing_bits),
        str(result.mdr.cost.total),
        "1.00x",
    ]]
    rows.append([
        "Diff (differing bits)",
        str(result.mdr.diff.lut_bits),
        str(result.mdr.diff.routing_bits),
        str(result.mdr.diff.total),
        f"{result.mdr.cost.total / result.mdr.diff.total:.2f}x",
    ])
    for strategy, dcs in result.dcs.items():
        rows.append([
            f"DCS ({strategy.value})",
            str(dcs.cost.lut_bits),
            str(dcs.cost.routing_bits),
            str(dcs.cost.total),
            f"{result.speedup(strategy):.2f}x",
        ])
    lines.extend(_table(
        ["variant", "LUT bits", "routing bits", "total", "speed-up"],
        rows,
    ))

    lines.extend(["", "## Merged (Tunable) circuit", ""])
    for strategy, dcs in result.dcs.items():
        stats = dcs.tunable.stats()
        lines.append(
            f"- **{strategy.value}**: {stats['tluts']} Tunable LUTs, "
            f"{stats['connections']} Tunable connections "
            f"({stats['shared_connections']} always-on), "
            f"{stats['parameterized_lut_bits']} parameterised LUT "
            "bits"
        )

    lines.extend(["", "## Per-mode wire usage", ""])
    wl_rows = []
    mdr_wl = result.mdr.per_mode_wirelength()
    for mode, wires in enumerate(mdr_wl):
        row = [f"mode {mode}", str(wires)]
        for strategy, dcs in result.dcs.items():
            dcs_wl = dcs.per_mode_wirelength()[mode]
            row.append(
                f"{dcs_wl} ({100 * dcs_wl / wires:.0f}%)"
            )
        wl_rows.append(row)
    header = ["mode", "MDR wires"]
    header.extend(
        f"DCS {s.value}" for s in result.dcs
    )
    lines.extend(_table(header, wl_rows))
    lines.append("")
    return "\n".join(lines)
