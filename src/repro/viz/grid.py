"""ASCII floorplans and channel heat maps.

Every renderer returns a plain string; rows are printed top-down with
the VPR convention of y growing upwards (row ``ny`` first).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.place.placer import Placement
from repro.route.router import RoutingResult

#: Shade characters from empty to full.
_SHADES = " .:-=+*#%@"


def placement_floorplan(placement: Placement) -> str:
    """One character per logic tile: ``.`` empty, ``#`` occupied.

    Pads are drawn on the perimeter ring (``o`` for occupied pad
    locations).
    """
    arch = placement.arch
    occupied_clb: Set[tuple] = set()
    occupied_pad: Set[tuple] = set()
    for site in placement.sites.values():
        if site.kind == "clb":
            occupied_clb.add((site.x, site.y))
        else:
            occupied_pad.add((site.x, site.y))

    lines = []
    for y in range(arch.ny + 1, -1, -1):
        row = []
        for x in range(0, arch.nx + 2):
            if arch.contains_clb(x, y):
                row.append(
                    "#" if (x, y) in occupied_clb else "."
                )
            elif (x, y) in set(arch.pad_locations()):
                row.append("o" if (x, y) in occupied_pad else "-")
            else:
                row.append(" ")
        lines.append("".join(row))
    util = len(occupied_clb) / max(1, arch.n_clbs)
    lines.append(
        f"{arch.nx}x{arch.ny} CLBs, {len(occupied_clb)} used "
        f"({100 * util:.0f}%)"
    )
    return "\n".join(lines)


def tunable_occupancy(tunable) -> str:
    """Per-tile member counts of a placed Tunable circuit.

    Digits show how many modes occupy each Tunable LUT's tile — ``2``
    marks the merged sites the combined placement aligned, ``1`` the
    mode-exclusive ones.
    """
    counts: Dict[tuple, int] = {}
    nx = ny = 0
    for tlut in tunable.tluts.values():
        if tlut.site is None:
            raise ValueError("tunable circuit has no sites")
        pos = (tlut.site.x, tlut.site.y)
        counts[pos] = max(
            counts.get(pos, 0), len(tlut.members)
        )
        nx, ny = max(nx, pos[0]), max(ny, pos[1])
    lines = []
    for y in range(ny, 0, -1):
        row = []
        for x in range(1, nx + 1):
            count = counts.get((x, y), 0)
            row.append(str(count) if count else ".")
        lines.append("".join(row))
    merged = sum(1 for c in counts.values() if c > 1)
    lines.append(
        f"{len(counts)} occupied tiles, {merged} carrying "
        "multiple modes"
    )
    return "\n".join(lines)


def channel_heatmap(
    routing: RoutingResult,
    mode: int = 0,
    orientation: str = "x",
) -> str:
    """Channel-utilisation heat map for one mode.

    One cell per channel position; the shade encodes the fraction of
    tracks carrying a wire of *mode* at that position.
    """
    if orientation not in ("x", "y"):
        raise ValueError("orientation must be 'x' or 'y'")
    rrg = routing.rrg
    arch = rrg.arch
    wires = routing.wires_used(mode)
    table = rrg.chanx if orientation == "x" else rrg.chany
    usage: Dict[tuple, int] = {}
    for (x, y, _t), node in table.items():
        if node in wires:
            usage[(x, y)] = usage.get((x, y), 0) + 1
    width = arch.channel_width

    positions = (
        arch.chanx_positions() if orientation == "x"
        else arch.chany_positions()
    )
    xs = sorted({p[0] for p in positions})
    ys = sorted(
        {
            p[1]
            for p in (
                arch.chanx_positions() if orientation == "x"
                else arch.chany_positions()
            )
        }
    )
    lines = [f"chan{orientation} utilisation, mode {mode} "
             f"(W={width}):"]
    for y in reversed(ys):
        row = []
        for x in xs:
            used = usage.get((x, y), 0)
            shade = _SHADES[
                min(len(_SHADES) - 1,
                    int(round(used / width * (len(_SHADES) - 1))))
            ]
            row.append(shade)
        lines.append("".join(row))
    peak = max(usage.values(), default=0)
    lines.append(f"peak {peak}/{width} tracks")
    return "\n".join(lines)
