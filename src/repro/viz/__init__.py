"""Visualisation and reporting of multi-mode implementations.

Text-first tooling (no plotting dependencies):

* :mod:`repro.viz.grid` — ASCII floorplans: per-mode occupancy of the
  reconfigurable region and channel-utilisation heat maps;
* :mod:`repro.viz.svg` — standalone SVG renderings of a placement and
  of per-mode routed wires;
* :mod:`repro.viz.report` — a full implementation report (region,
  merge statistics, Fig. 5/6/7-style numbers) in Markdown.
"""

from repro.viz.grid import (
    channel_heatmap,
    placement_floorplan,
    tunable_occupancy,
)
from repro.viz.report import implementation_report
from repro.viz.svg import routing_svg

__all__ = [
    "channel_heatmap",
    "implementation_report",
    "placement_floorplan",
    "routing_svg",
    "tunable_occupancy",
]
