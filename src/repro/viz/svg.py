"""Standalone SVG renderings of placements and routed wires.

The generated documents are self-contained (no scripts, no external
references) and small enough to diff in code review.  Geometry: one
grid tile is ``TILE`` units; logic tiles are squares, channel wires
are thin lines between them.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.route.router import RoutingResult

TILE = 20
_MODE_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
)


def _header(width: int, height: int, title: str) -> List[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f"<title>{html.escape(title)}</title>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _tile_origin(x: int, y: int, ny: int) -> tuple:
    """SVG origin of grid tile (x, y); SVG y grows downwards."""
    return x * TILE, (ny + 1 - y) * TILE


def routing_svg(
    routing: RoutingResult,
    modes: Optional[Sequence[int]] = None,
    title: str = "multi-mode routing",
) -> str:
    """Render the fabric with each mode's wires in its own colour.

    Wires used by several of the requested modes are drawn darker
    (they are the shared, static-bit wires the merge is after).
    """
    rrg = routing.rrg
    arch = rrg.arch
    modes = list(range(routing.n_modes)) if modes is None else list(
        modes
    )
    width = (arch.nx + 2) * TILE + TILE
    height = (arch.ny + 2) * TILE + TILE
    parts = _header(width, height, title)

    # Logic tiles.
    for x in range(1, arch.nx + 1):
        for y in range(1, arch.ny + 1):
            ox, oy = _tile_origin(x, y, arch.ny)
            parts.append(
                f'<rect x="{ox + 3}" y="{oy + 3}" '
                f'width="{TILE - 6}" height="{TILE - 6}" '
                'fill="#eeeeee" stroke="#999999"/>'
            )

    # Wire usage per mode.
    usage: Dict[int, List[int]] = {}
    for mode in modes:
        for node in routing.wires_used(mode):
            usage.setdefault(node, []).append(mode)

    for node, node_modes in usage.items():
        x, y = rrg.node_x[node], rrg.node_y[node]
        label = rrg.node_label[node]
        track = int(label.split(".t", 1)[1])
        shared = len(node_modes) > 1
        color = (
            "#222222" if shared
            else _MODE_COLORS[node_modes[0] % len(_MODE_COLORS)]
        )
        w = arch.channel_width
        offset = 3 + (track * (TILE - 6)) // max(1, w)
        if label.startswith("chanx"):
            # Horizontal wire above row y, spanning tile x.
            ox, oy = _tile_origin(x, y, arch.ny)
            line_y = oy - offset
            parts.append(
                f'<line x1="{ox}" y1="{line_y}" '
                f'x2="{ox + TILE}" y2="{line_y}" '
                f'stroke="{color}" stroke-width="1.2"/>'
            )
        else:
            # Vertical wire right of column x, spanning tile y.
            ox, oy = _tile_origin(x, y, arch.ny)
            line_x = ox + TILE + offset - 3
            parts.append(
                f'<line x1="{line_x}" y1="{oy}" '
                f'x2="{line_x}" y2="{oy + TILE}" '
                f'stroke="{color}" stroke-width="1.2"/>'
            )

    # Legend.
    legend_y = height - TILE // 2
    legend_x = TILE
    for mode in modes:
        color = _MODE_COLORS[mode % len(_MODE_COLORS)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" '
            'font-size="10" font-family="monospace">mode '
            f"{mode}</text>"
        )
        legend_x += 70
    parts.append(
        f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" '
        'height="10" fill="#222222"/>'
    )
    parts.append(
        f'<text x="{legend_x + 14}" y="{legend_y}" font-size="10" '
        'font-family="monospace">shared</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
