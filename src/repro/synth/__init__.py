"""Synthesis front-end: netlist optimisation and K-LUT technology mapping.

This subpackage replaces the commercial front-end the paper relies on:

* :mod:`repro.synth.optimize` — technology-independent clean-up passes
  (constant propagation, buffer sweeping, dead-node elimination).
* :mod:`repro.synth.techmap` — structural decomposition into two-input
  gates followed by cut-based, depth-oriented K-LUT mapping with area
  recovery, producing the per-mode LUT circuits the merge consumes.
"""

from repro.synth.optimize import optimize_network
from repro.synth.techmap import TechMapper, tech_map

__all__ = ["optimize_network", "TechMapper", "tech_map"]
