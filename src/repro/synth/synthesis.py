"""Word-level synthesis helpers.

The paper's benchmark circuits come from HDL front-ends (VHDL regex
engines, FIR filters).  This module provides the small structural-HDL
layer our generators use instead: multi-bit buses, adders, shifters and
comparators synthesised into a :class:`LogicNetwork` of simple gates.

Words are little-endian lists of signal names (index 0 = LSB).  Every
builder returns signal names so circuits compose naturally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.logic import LogicNetwork, fresh_namer


class WordBuilder:
    """Structural word-level circuit builder over a logic network."""

    def __init__(self, network: LogicNetwork, prefix: str = "_w") -> None:
        self.network = network
        self._namer = fresh_namer(network, prefix)
        self._const_cache: dict = {}

    # -- scalars ----------------------------------------------------------

    def const_bit(self, value: bool) -> str:
        """A constant 0/1 signal (cached per network)."""
        key = bool(value)
        if key not in self._const_cache:
            name = self._namer()
            self.network.add_const(name, key)
            self._const_cache[key] = name
        return self._const_cache[key]

    def gate_not(self, a: str) -> str:
        name = self._namer()
        return self.network.add_not(name, a)

    # Wide gates are emitted as balanced trees: a single n-ary node
    # would need a 2**n-entry truth table, which explodes for the
    # 20+-input OR gates character-class decoders produce.
    _MAX_GATE_ARITY = 4

    def _tree_gate(self, fanins: Sequence[str], adder) -> str:
        level = list(fanins)
        if not level:
            raise ValueError("gate needs at least one fanin")
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), self._MAX_GATE_ARITY):
                chunk = level[i:i + self._MAX_GATE_ARITY]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    nxt.append(adder(self._namer(), chunk))
            level = nxt
        return level[0]

    def gate_and(self, fanins: Sequence[str]) -> str:
        return self._tree_gate(fanins, self.network.add_and)

    def gate_or(self, fanins: Sequence[str]) -> str:
        return self._tree_gate(fanins, self.network.add_or)

    def gate_xor(self, a: str, b: str) -> str:
        name = self._namer()
        return self.network.add_xor(name, (a, b))

    def gate_mux(self, sel: str, a: str, b: str) -> str:
        """``sel ? b : a``."""
        name = self._namer()
        return self.network.add_mux(name, sel, a, b)

    def flipflop(self, data: str, init: bool = False,
                 name: Optional[str] = None) -> str:
        """A D flip-flop sampling *data*."""
        ff_name = name if name is not None else self._namer()
        return self.network.add_latch(ff_name, data, init)

    # -- words --------------------------------------------------------------

    def const_word(self, value: int, width: int) -> List[str]:
        """Little-endian constant word."""
        if value < 0:
            value &= (1 << width) - 1
        return [
            self.const_bit(bool(value >> i & 1)) for i in range(width)
        ]

    def input_word(self, base: str, width: int) -> List[str]:
        """Declare primary-input bus ``base[0..width-1]``."""
        return [
            self.network.add_input(f"{base}[{i}]") for i in range(width)
        ]

    def output_word(self, base: str, bits: Sequence[str]) -> List[str]:
        """Expose *bits* as primary outputs named ``base[i]``.

        Inserts buffers so the outputs carry the requested names.
        """
        names = []
        for i, bit in enumerate(bits):
            name = f"{base}[{i}]"
            self.network.add_buf(name, bit)
            self.network.add_output(name)
            names.append(name)
        return names

    def register_word(self, bits: Sequence[str],
                      base: Optional[str] = None) -> List[str]:
        """Register every bit of a word through flip-flops."""
        out = []
        for i, bit in enumerate(bits):
            name = f"{base}[{i}]" if base is not None else None
            out.append(self.flipflop(bit, name=name))
        return out

    # -- arithmetic -----------------------------------------------------------

    def half_adder(self, a: str, b: str) -> tuple:
        """Returns (sum, carry)."""
        return self.gate_xor(a, b), self.gate_and((a, b))

    def full_adder(self, a: str, b: str, cin: str) -> tuple:
        """Returns (sum, carry_out)."""
        axb = self.gate_xor(a, b)
        s = self.gate_xor(axb, cin)
        carry = self.gate_or(
            (self.gate_and((a, b)), self.gate_and((axb, cin)))
        )
        return s, carry

    def adder(self, a: Sequence[str], b: Sequence[str],
              cin: Optional[str] = None, width: Optional[int] = None
              ) -> List[str]:
        """Ripple-carry adder; result truncated/extended to *width*.

        Shorter operands are zero-extended.  Returns ``width`` sum bits
        (default: max operand width, carry-out dropped — modular
        arithmetic, matching hardware datapath semantics).
        """
        width = width or max(len(a), len(b))
        zero = self.const_bit(False)
        aa = list(a) + [zero] * (width - len(a))
        bb = list(b) + [zero] * (width - len(b))
        carry = cin if cin is not None else zero
        out = []
        for i in range(width):
            s, carry = self.full_adder(aa[i], bb[i], carry)
            out.append(s)
        return out

    def negate(self, a: Sequence[str], width: Optional[int] = None
               ) -> List[str]:
        """Two's-complement negation."""
        width = width or len(a)
        zero = self.const_bit(False)
        aa = list(a) + [zero] * (width - len(a))
        inverted = [self.gate_not(bit) for bit in aa[:width]]
        one = self.const_word(1, width)
        return self.adder(inverted, one, width=width)

    def subtract(self, a: Sequence[str], b: Sequence[str],
                 width: Optional[int] = None) -> List[str]:
        """Two's-complement subtraction ``a - b``."""
        width = width or max(len(a), len(b))
        zero = self.const_bit(False)
        bb = list(b) + [zero] * (width - len(b))
        inverted = [self.gate_not(bit) for bit in bb[:width]]
        one = self.const_bit(True)
        return self.adder(
            list(a), inverted, cin=one, width=width
        )

    def shift_left_const(self, a: Sequence[str], amount: int,
                         width: Optional[int] = None) -> List[str]:
        """Constant left shift (zero fill), truncated to *width*."""
        width = width or len(a) + amount
        zero = self.const_bit(False)
        shifted = [zero] * amount + list(a)
        shifted += [zero] * (width - len(shifted))
        return shifted[:width]

    def mul_const(self, a: Sequence[str], coefficient: int,
                  width: int) -> List[str]:
        """Multiply a word by a signed constant via shift-and-add.

        This is the constant propagation the paper's FIR experiment
        performs: the generic multiplier disappears and only the
        shift-add network for the particular coefficient remains (CSD
        encoding keeps the adder count minimal).
        """
        if coefficient == 0:
            return self.const_word(0, width)
        negative = coefficient < 0
        magnitude = -coefficient if negative else coefficient
        terms = _csd_digits(magnitude)
        acc: Optional[List[str]] = None
        for shift, sign in terms:
            term = self.shift_left_const(a, shift, width)
            if acc is None:
                acc = term if sign > 0 else self.negate(term, width)
            elif sign > 0:
                acc = self.adder(acc, term, width=width)
            else:
                acc = self.subtract(acc, term, width=width)
        assert acc is not None
        if negative:
            acc = self.negate(acc, width)
        return acc

    def equals_const(self, a: Sequence[str], value: int) -> str:
        """Single-bit comparison of word *a* against a constant."""
        literals = []
        for i, bit in enumerate(a):
            if value >> i & 1:
                literals.append(bit)
            else:
                literals.append(self.gate_not(bit))
        return self.gate_and(literals)

    def mux_word(self, sel: str, a: Sequence[str], b: Sequence[str]
                 ) -> List[str]:
        """Word-level 2:1 mux: ``sel ? b : a``."""
        if len(a) != len(b):
            raise ValueError("mux operands must share a width")
        return [self.gate_mux(sel, x, y) for x, y in zip(a, b)]


def _csd_digits(value: int) -> List[tuple]:
    """Canonical signed-digit decomposition of a positive constant.

    Returns (shift, sign) pairs with sign in {+1, -1} such that
    ``value == sum(sign << shift)`` and no two shifts are adjacent.
    """
    digits: List[tuple] = []
    shift = 0
    while value:
        if value & 1:
            if value & 2:  # run of ones: use -1 here, carry up
                digits.append((shift, -1))
                value += 1
            else:
                digits.append((shift, 1))
                value -= 1
        value >>= 1
        shift += 1
    return digits


def word_to_int(values: Sequence[bool]) -> int:
    """Interpret simulated bit values as an unsigned little-endian word."""
    total = 0
    for i, v in enumerate(values):
        if v:
            total |= 1 << i
    return total


def int_to_inputs(base: str, width: int, value: int) -> dict:
    """Input map assigning *value* to bus ``base[i]`` signals."""
    return {
        f"{base}[{i}]": bool(value >> i & 1) for i in range(width)
    }
