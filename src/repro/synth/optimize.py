"""Technology-independent optimisation passes.

The FIR experiment in the paper depends on these: the filter
coefficients are constants, and "after which all the constants were
propagated" is what shrinks the specialised filter to a third of the
generic one.  The passes here are classic netlist clean-ups:

* constant propagation (a node whose table collapses under constant
  fanins becomes a constant),
* support reduction (drop fanins the function does not depend on),
* buffer/inverter absorption into fanout tables,
* dead-node elimination (cones not reachable from outputs or latches).

All passes preserve sequential behaviour; the test-suite checks this
with randomised simulation.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.netlist.logic import LogicNetwork
from repro.netlist.truthtable import TruthTable


def propagate_constants(network: LogicNetwork) -> LogicNetwork:
    """Fold constants through the combinational logic.

    Nodes with constant fanins are restricted; nodes that become
    constant turn into constant drivers and propagate further.  Latches
    fed by constants are left in place (their output still toggles at
    cycle 0 if init differs), so sequential semantics are untouched.
    """
    result = LogicNetwork(network.name)
    result.inputs = list(network.inputs)
    result.latches = dict(network.latches)
    result.outputs = list(network.outputs)

    const_value: Dict[str, bool] = {}

    for node in network.topological_nodes():
        fanins = []
        table = node.table
        # Restrict away constant fanins (right-to-left keeps indices valid).
        pairs = list(enumerate(node.fanins))
        for index, src in reversed(pairs):
            if src in const_value:
                table = table.restrict(index, const_value[src])
        fanins = [s for s in node.fanins if s not in const_value]
        # Drop fanins outside the support.
        support = table.support()
        if len(support) != table.n_vars:
            keep = sorted(support)
            new_table = TruthTable.const(False, len(keep))
            bits = 0
            for assignment in range(1 << len(keep)):
                full = 0
                for j, var in enumerate(keep):
                    if assignment & (1 << j):
                        full |= 1 << var
                if table.evaluate_index(full):
                    bits |= 1 << assignment
            new_table = TruthTable(len(keep), bits)
            fanins = [fanins[i] for i in keep]
            table = new_table
        if table.is_const():
            const_value[node.name] = table.const_value()
            result.add_node(node.name, (), TruthTable.const(
                table.const_value(), 0))
        else:
            result.add_node(node.name, fanins, table)
    result.validate()
    return result


def sweep_buffers(network: LogicNetwork) -> LogicNetwork:
    """Absorb single-input nodes (buffers/inverters) into their readers.

    A buffer is replaced by its source; an inverter is folded into every
    reading node's truth table.  Buffers/inverters that drive primary
    outputs or latches directly are kept (the signal name is the
    output).
    """
    # name -> (source, inverted)
    alias: Dict[str, Tuple[str, bool]] = {}
    protected: Set[str] = set(network.outputs)
    for latch in network.latches.values():
        protected.add(latch.data)

    for node in network.topological_nodes():
        if len(node.fanins) != 1 or node.name in protected:
            continue
        src = node.fanins[0]
        if node.table == TruthTable.var(0, 1):
            inverted = False
        elif node.table == ~TruthTable.var(0, 1):
            inverted = True
        else:
            continue  # constant via 1 input handled by const prop
        base, base_inv = alias.get(src, (src, False))
        alias[node.name] = (base, base_inv ^ inverted)

    if not alias:
        return network.copy()

    result = LogicNetwork(network.name)
    result.inputs = list(network.inputs)
    result.outputs = list(network.outputs)
    for name, latch in network.latches.items():
        data, inverted = alias.get(latch.data, (latch.data, False))
        if inverted:
            # Cannot absorb inversion into a latch; keep the inverter.
            data = latch.data
            alias.pop(latch.data, None)
        result.add_latch(name, data, latch.init)

    for node in network.topological_nodes():
        if node.name in alias:
            continue
        fanins = []
        table = node.table
        for index, src in enumerate(node.fanins):
            base, inverted = alias.get(src, (src, False))
            fanins.append(base)
            if inverted:
                subs = [
                    ~TruthTable.var(j, table.n_vars)
                    if j == index
                    else TruthTable.var(j, table.n_vars)
                    for j in range(table.n_vars)
                ]
                table = table.compose(subs)
        result.add_node(node.name, fanins, table)
    result.validate()
    return result


def remove_dead_nodes(network: LogicNetwork) -> LogicNetwork:
    """Drop logic not reachable from outputs or latch data inputs."""
    live: Set[str] = set(network.outputs)
    changed = True
    while changed:
        changed = False
        for latch in network.latches.values():
            if latch.name in live and latch.data not in live:
                live.add(latch.data)
                changed = True
        stack = [s for s in live]
        while stack:
            name = stack.pop()
            node = network.nodes.get(name)
            if node is None:
                continue
            for src in node.fanins:
                if src not in live:
                    live.add(src)
                    stack.append(src)
                    changed = True

    result = LogicNetwork(network.name)
    result.inputs = list(network.inputs)
    result.outputs = list(network.outputs)
    for name, latch in network.latches.items():
        if name in live:
            result.latches[name] = latch
    for node in network.topological_nodes():
        if node.name in live:
            result.nodes[node.name] = node
    result.validate()
    return result


def optimize_network(
    network: LogicNetwork, max_rounds: int = 8
) -> LogicNetwork:
    """Run the clean-up passes to a fixed point (bounded by *max_rounds*)."""
    current = network
    for _ in range(max_rounds):
        before = (len(current.nodes), len(current.latches))
        current = propagate_constants(current)
        current = sweep_buffers(current)
        current = remove_dead_nodes(current)
        after = (len(current.nodes), len(current.latches))
        if after == before:
            break
    return current
