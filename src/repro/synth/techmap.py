"""Cut-based K-LUT technology mapping.

This is the "Technology mapping" box of the conventional FPGA tool flow
(paper Fig. 1(a)): it turns a technology-independent logic network into
a netlist of K-input LUT blocks (one LUT + optional flip-flop each).

Pipeline:

1. **Decomposition** — every node is decomposed into two-input gates
   (n-ary AND/OR/XOR become balanced trees; general functions are
   Shannon-expanded), so cut enumeration sees a 2-bounded network.
2. **Cut enumeration** — priority cuts: each node keeps the best
   ``cut_limit`` K-feasible cuts, merged from its fanins' cuts.
3. **Depth-oriented selection** — every node records its depth-optimal
   cut; a second pass relaxes off-critical nodes to cheaper cuts (area
   recovery under required-time slack).
4. **Cover extraction & FF packing** — outputs and latch-data signals
   seed the cover; each latch is packed with its driving LUT when that
   LUT has no other fanout, matching the architecture's one-LUT+one-FF
   logic block.

The mapped circuit is functionally equivalent to the input network;
``tests/test_techmap.py`` verifies this by randomised simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.netlist.logic import LogicNetwork, fresh_namer
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable

Cut = FrozenSet[str]


# ---------------------------------------------------------------------------
# Step 1: decomposition into two-input gates
# ---------------------------------------------------------------------------


def _is_nary(table: TruthTable, op: str) -> Optional[List[bool]]:
    """Detect n-ary AND/OR of possibly-inverted inputs.

    Returns the per-input inversion flags when *table* is the n-ary
    *op* of its (optionally inverted) inputs, else None.
    """
    n = table.n_vars
    if n < 2:
        return None
    inversions: List[bool] = []
    if op == "and":
        on = [i for i in range(table.n_entries) if table.evaluate_index(i)]
        if len(on) != 1:
            return None
        assignment = on[0]
        for i in range(n):
            inversions.append(not assignment & (1 << i))
        return inversions
    if op == "or":
        inv = _is_nary(~table, "and")
        if inv is None:
            return None
        return [not v for v in inv]
    raise ValueError(op)


def _is_parity(table: TruthTable) -> Optional[bool]:
    """Detect n-ary XOR/XNOR. Returns the output inversion flag."""
    n = table.n_vars
    if n < 2:
        return None
    base = table.evaluate_index(0)
    for assignment in range(table.n_entries):
        parity = bin(assignment).count("1") & 1
        if table.evaluate_index(assignment) != (bool(parity) ^ base):
            return None
    return base


def decompose(network: LogicNetwork) -> LogicNetwork:
    """Return an equivalent network whose nodes have fanin <= 2."""
    result = LogicNetwork(network.name)
    result.inputs = list(network.inputs)
    result.outputs = list(network.outputs)
    result.latches = dict(network.latches)
    namer = fresh_namer(network, "_dec")

    and2 = TruthTable.var(0, 2) & TruthTable.var(1, 2)
    or2 = TruthTable.var(0, 2) | TruthTable.var(1, 2)
    xor2 = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
    not1 = ~TruthTable.var(0, 1)

    def emit(fanins: Sequence[str], table: TruthTable,
             name: Optional[str] = None) -> str:
        node_name = name if name is not None else namer()
        result.add_node(node_name, fanins, table)
        return node_name

    def emit_tree(signals: List[str], table2: TruthTable,
                  name: Optional[str]) -> str:
        """Balanced binary tree of the associative gate *table2*."""
        level = list(signals)
        while len(level) > 1:
            nxt: List[str] = []
            for i in range(0, len(level) - 1, 2):
                final = len(level) == 2 and name is not None
                nxt.append(
                    emit((level[i], level[i + 1]), table2,
                         name if final else None)
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if name is not None and level[0] != name:
            # Single signal but a name is required: emit a buffer.
            return emit((level[0],), TruthTable.var(0, 1), name)
        return level[0]

    def build(table: TruthTable, fanins: Tuple[str, ...],
              name: Optional[str]) -> str:
        """Emit gates computing *table* over *fanins*; returns the root."""
        n = table.n_vars
        if n == 0:
            return emit((), table, name)
        if table.is_const():
            return emit((), TruthTable.const(table.const_value(), 0),
                        name)
        support = table.support()
        if len(support) < n:
            keep = sorted(support)
            bits = 0
            for assignment in range(1 << len(keep)):
                full = 0
                for j, var in enumerate(keep):
                    if assignment & (1 << j):
                        full |= 1 << var
                if table.evaluate_index(full):
                    bits |= 1 << assignment
            sub = TruthTable(len(keep), bits)
            return build(sub, tuple(fanins[i] for i in keep), name)
        if n <= 2:
            return emit(fanins, table, name)
        for op, table2 in (("and", and2), ("or", or2)):
            inv = _is_nary(table, op)
            if inv is not None:
                legs = []
                for i, flag in enumerate(inv):
                    legs.append(
                        emit((fanins[i],), not1) if flag else fanins[i]
                    )
                return emit_tree(legs, table2, name)
        parity_inv = _is_parity(table)
        if parity_inv is not None:
            root = emit_tree(list(fanins), xor2,
                             None if parity_inv else name)
            if parity_inv:
                return emit((root,), not1, name)
            return root
        # General case: Shannon expansion on the last variable.
        var = n - 1
        f0 = table.restrict(var, False)
        f1 = table.restrict(var, True)
        rest = fanins[:var] + fanins[var + 1:]
        sel = fanins[var]
        low = build(f0, rest, None)
        high = build(f1, rest, None)
        not_sel = emit((sel,), not1)
        a = emit((not_sel, low), and2)
        b = emit((sel, high), and2)
        return emit((a, b), or2, name)

    for node in network.topological_nodes():
        build(node.table, node.fanins, node.name)
    result.validate()
    return result


# ---------------------------------------------------------------------------
# Steps 2-4: cut enumeration, selection, cover extraction
# ---------------------------------------------------------------------------


@dataclass
class _CutInfo:
    cut: Cut
    depth: int
    area_flow: float


class TechMapper:
    """Configurable K-LUT mapper; see the module docstring.

    Parameters
    ----------
    k:
        LUT input count of the target architecture.
    cut_limit:
        Number of priority cuts kept per node.
    area_rounds:
        Number of area-recovery refinement passes after the
        depth-oriented pass.
    """

    def __init__(self, k: int = 4, cut_limit: int = 8,
                 area_rounds: int = 2) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k
        self.cut_limit = cut_limit
        self.area_rounds = area_rounds

    # -- public API -------------------------------------------------------

    def map(self, network: LogicNetwork) -> LutCircuit:
        """Map *network* to a :class:`LutCircuit` of ``self.k``-LUTs."""
        network = decompose(network)
        order = network.topological_nodes()
        sources = set(network.inputs) | set(network.latches)

        cuts = self._enumerate_cuts(network, order, sources)
        best = self._select_depth(network, order, sources, cuts)
        for _ in range(self.area_rounds):
            best = self._recover_area(network, order, sources, cuts, best)
        return self._extract(network, sources, best)

    # -- cut enumeration ----------------------------------------------------

    def _enumerate_cuts(
        self,
        network: LogicNetwork,
        order,
        sources: Set[str],
    ) -> Dict[str, List[Cut]]:
        cuts: Dict[str, List[Cut]] = {
            s: [frozenset((s,))] for s in sources
        }
        for node in order:
            if not node.fanins:
                cuts[node.name] = [frozenset()]
                continue
            merged: Set[Cut] = set()
            fanin_cuts = [cuts[f] for f in node.fanins]
            if len(fanin_cuts) == 1:
                for c in fanin_cuts[0]:
                    if len(c) <= self.k:
                        merged.add(c)
            else:
                for ca in fanin_cuts[0]:
                    for cb in fanin_cuts[1]:
                        u = ca | cb
                        if len(u) <= self.k:
                            merged.add(u)
            merged.add(frozenset((node.name,)))  # trivial cut
            ranked = sorted(
                merged, key=lambda c: (len(c), sorted(c))
            )
            cuts[node.name] = ranked[: self.cut_limit] + (
                [frozenset((node.name,))]
                if frozenset((node.name,)) not in ranked[: self.cut_limit]
                else []
            )
        return cuts

    # -- selection ------------------------------------------------------------

    def _select_depth(
        self, network, order, sources: Set[str],
        cuts: Dict[str, List[Cut]],
    ) -> Dict[str, Cut]:
        """Choose the depth-optimal cut for every node."""
        depth: Dict[str, int] = {s: 0 for s in sources}
        best: Dict[str, Cut] = {}
        for node in order:
            best_cut: Optional[Cut] = None
            best_key: Optional[Tuple[int, int]] = None
            for cut in cuts[node.name]:
                if cut == frozenset((node.name,)):
                    continue
                d = 1 + max((depth[leaf] for leaf in cut), default=0)
                key = (d, len(cut))
                if best_key is None or key < best_key:
                    best_key = key
                    best_cut = cut
            assert best_cut is not None
            best[node.name] = best_cut
            depth[node.name] = best_key[0]
        return best

    def _recover_area(
        self, network, order, sources: Set[str],
        cuts: Dict[str, List[Cut]], best: Dict[str, Cut],
    ) -> Dict[str, Cut]:
        """One pass of slack-aware area recovery.

        Nodes keep their arrival time no worse than the global critical
        depth allows; among cuts meeting the required time, the one
        with the lowest area-flow is picked.
        """
        depth: Dict[str, int] = {s: 0 for s in sources}
        area_flow: Dict[str, float] = {s: 0.0 for s in sources}
        fanout_count = self._mapped_fanouts(network, best)

        new_best: Dict[str, Cut] = {}
        for node in order:
            best_cut: Optional[Cut] = None
            best_key = None
            for cut in cuts[node.name]:
                if cut == frozenset((node.name,)):
                    continue
                d = 1 + max((depth[leaf] for leaf in cut), default=0)
                # Sorted: float addition is not associative, and cut is
                # a string frozenset whose iteration order is salted per
                # process — unordered summation makes the area-flow tie
                # break (and the whole mapping) PYTHONHASHSEED-dependent.
                flow = 1.0 + sum(
                    area_flow[leaf] for leaf in sorted(cut)
                )
                key = (d, flow, len(cut))
                if best_key is None or key < best_key:
                    best_key = key
                    best_cut = cut
            assert best_cut is not None
            new_best[node.name] = best_cut
            depth[node.name] = best_key[0]
            refs = max(1, fanout_count.get(node.name, 1))
            area_flow[node.name] = best_key[1] / refs
        return new_best

    def _mapped_fanouts(
        self, network, best: Dict[str, Cut]
    ) -> Dict[str, int]:
        refs: Dict[str, int] = {}
        required = self._required_roots(network)
        stack = [r for r in required if r in network.nodes]
        visited: Set[str] = set()
        while stack:
            root = stack.pop()
            if root in visited:
                continue
            visited.add(root)
            for leaf in best[root]:
                refs[leaf] = refs.get(leaf, 0) + 1
                if leaf in network.nodes:
                    stack.append(leaf)
        return refs

    @staticmethod
    def _required_roots(network: LogicNetwork) -> Set[str]:
        required = set(network.outputs)
        for latch in network.latches.values():
            required.add(latch.data)
        return required

    # -- cover extraction -------------------------------------------------

    def _cone_table(
        self, network: LogicNetwork, root: str, cut: Cut
    ) -> Tuple[TruthTable, List[str]]:
        """Truth table of *root* over the ordered leaves of *cut*."""
        leaves = sorted(cut)
        index = {leaf: i for i, leaf in enumerate(leaves)}
        m = len(leaves)
        memo: Dict[str, TruthTable] = {
            leaf: TruthTable.var(i, m) for leaf, i in index.items()
        }

        def eval_signal(name: str) -> TruthTable:
            if name in memo:
                return memo[name]
            node = network.nodes[name]
            subs = [eval_signal(f) for f in node.fanins]
            if subs:
                table = node.table.compose(subs)
            else:
                table = TruthTable.const(node.table.const_value(), m)
            memo[name] = table
            return table

        return eval_signal(root), leaves

    def _extract(
        self, network: LogicNetwork, sources: Set[str],
        best: Dict[str, Cut],
    ) -> LutCircuit:
        circuit = LutCircuit(network.name, self.k)
        for name in network.inputs:
            circuit.add_input(name)

        # Select the cover: roots needed for outputs and latch inputs.
        required = self._required_roots(network)
        roots: Set[str] = set()
        stack = [r for r in required if r in network.nodes]
        while stack:
            root = stack.pop()
            if root in roots:
                continue
            roots.add(root)
            for leaf in best[root]:
                if leaf in network.nodes and leaf not in roots:
                    stack.append(leaf)

        # How many consumers each root has (other LUTs + POs + latches).
        root_refs: Dict[str, int] = {r: 0 for r in roots}
        for root in roots:
            for leaf in best[root]:
                if leaf in root_refs:
                    root_refs[leaf] += 1
        for out in network.outputs:
            if out in root_refs:
                root_refs[out] += 1
        for latch in network.latches.values():
            if latch.data in root_refs:
                root_refs[latch.data] += 1

        # Latch packing: a latch absorbs its driving LUT only when that
        # LUT has no consumer other than the latch itself (the packed
        # signal name disappears from the mapped netlist).
        packed: Dict[str, str] = {}  # data root -> latch name
        for latch in network.latches.values():
            data = latch.data
            if (
                data in roots
                and root_refs.get(data, 0) == 1
                and data not in network.outputs
                and data not in packed
            ):
                packed[data] = latch.name

        emitted: Set[str] = set()

        def emit_root(root: str) -> None:
            if root in emitted:
                return
            emitted.add(root)
            table, leaves = self._cone_table(network, root, best[root])
            # Leaves that are themselves packed roots refer to the LUT
            # output of a registered block; but a packed root's signal
            # name is consumed by its latch only, so leaves are either
            # sources or unpacked roots - safe to reference directly.
            if root in packed:
                circuit.add_block(
                    packed[root], leaves, table,
                    registered=True,
                    init=network.latches[packed[root]].init,
                )
            else:
                circuit.add_block(root, leaves, table)

        for root in sorted(roots):
            emit_root(root)

        # Latches that could not be packed get a feed-through LUT.
        for latch in network.latches.values():
            if packed.get(latch.data) == latch.name:
                continue
            circuit.add_block(
                latch.name, (latch.data,), TruthTable.var(0, 1),
                registered=True, init=latch.init,
            )

        for out in network.outputs:
            circuit.add_output(out)
        circuit.validate()
        return circuit


def tech_map(network: LogicNetwork, k: int = 4, **kwargs) -> LutCircuit:
    """Convenience wrapper: map *network* onto *k*-input LUTs."""
    return TechMapper(k=k, **kwargs).map(network)
