"""urllib client for the ``repro serve`` HTTP API.

Deliberately dependency-free and import-light: the CLI
``submit/status/result`` subcommands, the CI serve-smoke script, and
the e2e tests all drive the server through :class:`ServeClient`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple

DEFAULT_URL = "http://127.0.0.1:8765"

TERMINAL_STATES = ("done", "failed", "cancelled")


class ServeError(RuntimeError):
    """Non-success response from the server."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Thin JSON-over-HTTP wrapper; one instance per server URL."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 60.0) -> None:
        self.base = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, object]]:
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                req, timeout=self.timeout if timeout is None else timeout
            ) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                parsed = json.loads(body)
            except ValueError:
                parsed = {"error": body.decode("utf-8", "replace")}
            return exc.code, parsed

    def _expect(
        self,
        ok: Tuple[int, ...],
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        status, body = self.request(method, path, payload)
        if status not in ok:
            raise ServeError(status, body)
        return body

    # -- API ----------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._expect((200,), "GET", "/v1/healthz")

    def ping(self) -> bool:
        try:
            self.healthz()
            return True
        except (ServeError, urllib.error.URLError, ConnectionError, OSError):
            return False

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.1) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ping():
                return
            time.sleep(interval)
        raise TimeoutError(f"server at {self.base} not ready in {timeout}s")

    def stats(self) -> Dict[str, object]:
        return self._expect((200,), "GET", "/v1/stats")

    def submit(self, submission: Dict[str, object]) -> Dict[str, object]:
        """POST a submission; the response carries ``"deduped"``."""
        return self._expect((200, 202), "POST", "/v1/flows", submission)

    def status(self, flow_id: Optional[str] = None) -> Dict[str, object]:
        path = "/v1/flows" if flow_id is None else f"/v1/flows/{flow_id}"
        return self._expect((200,), "GET", path)

    def result(self, flow_id: str) -> Dict[str, object]:
        """Fetch the QoR payload; raises until the flow is done."""
        return self._expect((200,), "GET", f"/v1/flows/{flow_id}/result")

    def cancel(self, flow_id: str) -> Dict[str, object]:
        return self._expect((200,), "POST", f"/v1/flows/{flow_id}/cancel")

    def wait(
        self,
        flow_id: str,
        timeout: float = 600.0,
        interval: float = 0.2,
    ) -> Dict[str, object]:
        """Poll until the flow reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            body = self.status(flow_id)
            if body.get("state") in TERMINAL_STATES:
                return body
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"flow {flow_id} still {body.get('state')!r} "
                    f"after {timeout}s"
                )
            time.sleep(interval)

    def events(
        self, flow_id: str, timeout: float = 600.0
    ) -> Iterator[Dict[str, object]]:
        """Yield SSE ``state`` events until the stream closes."""
        req = urllib.request.Request(
            f"{self.base}/v1/flows/{flow_id}/events"
        )
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8", "replace").strip()
                if line.startswith("data:"):
                    yield json.loads(line[len("data:"):].strip())

    def resize(self, workers: int) -> Dict[str, object]:
        return self._expect(
            (200,), "POST", "/v1/admin/resize", {"workers": workers}
        )

    def drain(self, stop: bool = False) -> Dict[str, object]:
        return self._expect(
            (200,), "POST", "/v1/admin/drain", {"stop": stop}
        )


def pair_submission(
    suite: str,
    scale: str = "tiny",
    pair_index: int = 0,
    seed: int = 0,
    k: int = 4,
    options: Optional[Dict[str, object]] = None,
    strategies: Optional[List[str]] = None,
    tenant: str = "default",
    priority: str = "batch",
    name: Optional[str] = None,
) -> Dict[str, object]:
    """Build a submission payload for one registered suite pair.

    This is how ``repro submit --suite ...`` and the CI smoke test
    phrase their requests: the workload registry resolves the pair to
    concrete :class:`WorkloadSpec` values client-side, so the server
    fingerprint matches a local :func:`run_campaign` of the same pair
    exactly.
    """
    from repro.gen.suites import suite_pair_specs
    from repro.serve.service import workload_spec_dict

    pairs = suite_pair_specs(suite, seed=seed, k=k, scale=scale)
    if not 0 <= pair_index < len(pairs):
        raise ValueError(
            f"pair_index {pair_index} out of range; suite {suite!r} at "
            f"scale {scale!r} has {len(pairs)} pairs"
        )
    pair_name, specs = pairs[pair_index]
    body: Dict[str, object] = {
        "name": name or pair_name,
        "modes": [workload_spec_dict(spec) for spec in specs],
        "options": dict(options or {}),
        "tenant": tenant,
        "priority": priority,
    }
    if strategies is not None:
        body["strategies"] = list(strategies)
    return body
