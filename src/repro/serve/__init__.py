"""Compile-as-a-service: flow execution behind an HTTP API.

The subsystem splits cleanly in three:

* :mod:`repro.serve.service` — the transport-agnostic core.
  :class:`FlowService` validates submissions (workload specs +
  ``FlowOptions`` + merge strategies), collapses identical requests
  onto one execution via the campaign stage-cache fingerprint,
  enforces per-tenant quotas, and runs flows as jobs on a
  :class:`repro.exec.jobs.JobGraph` with priority lanes and graceful
  resize/drain.
* :mod:`repro.serve.server` — a stdlib-only asyncio HTTP/1.1 front
  end (``repro serve``): JSON endpoints for submit/status/result,
  an SSE event stream, and admin resize/drain.
* :mod:`repro.serve.client` — a urllib client (``repro
  submit/status/result`` and the CI smoke test are built on it).
"""

from repro.serve.service import (
    DEFAULT_TENANT_QUOTA,
    PRIORITY_LANES,
    FlowRecord,
    FlowService,
    FlowSubmission,
    QuotaExceeded,
    ServiceDraining,
    SubmissionError,
    workload_spec_dict,
)

__all__ = [
    "DEFAULT_TENANT_QUOTA",
    "PRIORITY_LANES",
    "FlowRecord",
    "FlowService",
    "FlowSubmission",
    "QuotaExceeded",
    "ServiceDraining",
    "SubmissionError",
    "workload_spec_dict",
]
