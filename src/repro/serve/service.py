"""Transport-agnostic flow service: validation, dedup, quotas, lanes.

:class:`FlowService` is the core the HTTP server (and any future
transport) wraps.  A submission names the mode circuits as
:class:`~repro.gen.spec.WorkloadSpec` dicts plus a
:class:`~repro.core.flow.FlowOptions` payload and merge strategies —
exactly the inputs of one campaign run — and executes as one job on a
:class:`~repro.exec.jobs.JobGraph`.

**Dedup.**  The identity of a flow is the ``campaign`` stage-cache
key: ``fingerprint(code digest, "campaign", schema version, specs,
options, strategies)`` — the same key
:func:`repro.bench.campaign._campaign_run_worker` memoizes its QoR
payload under.  Identical submissions (any client, any tenant)
therefore collapse twice over: concurrent ones attach to the
in-flight :class:`FlowRecord`, and later ones re-execute the worker
only to hit the persistent stage cache.  Distinct option *types*
cannot split the key because :meth:`FlowOptions.from_dict`
canonicalises every knob at the wire boundary.

**Quotas.**  A tenant may have at most ``tenant_quota`` non-terminal
flows that it originated or attached to; excess submissions are
rejected (HTTP 429) without queueing, keeping one tenant from
monopolising the pending heap.  Deduped attachment to another
tenant's flow is never rejected — it costs nothing.

**Priority lanes.**  ``"interactive"`` submissions dispatch before
``"batch"`` ones whenever the worker pool is contended (the job graph
owns the pending queue, so lanes work even while the pool is
saturated).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.campaign import (
    _campaign_run_worker,
    campaign_stage_inputs,
)
from repro.core.flow import FlowOptions
from repro.core.merge import MergeStrategy
from repro.exec.cache import StageCache
from repro.exec.jobs import (
    Job,
    JobGraph,
    JobState,
    ProcessJobExecutor,
    ThreadJobExecutor,
)
from repro.gen.spec import WorkloadSpec, registered_kinds

#: Dispatch priority by lane name; higher dispatches first.
PRIORITY_LANES: Dict[str, int] = {"interactive": 10, "batch": 0}

#: Max non-terminal flows a tenant may have originated/attached to.
DEFAULT_TENANT_QUOTA = 8

DEFAULT_STRATEGIES = (
    MergeStrategy.EDGE_MATCHING,
    MergeStrategy.WIRE_LENGTH,
)


class SubmissionError(ValueError):
    """Malformed submission payload (maps to HTTP 400)."""


class QuotaExceeded(RuntimeError):
    """Tenant has too many active flows (maps to HTTP 429)."""

    def __init__(self, tenant: str, active: int, quota: int) -> None:
        super().__init__(
            f"tenant {tenant!r} has {active} active flows "
            f"(quota {quota}); retry after one finishes"
        )
        self.tenant = tenant
        self.active = active
        self.quota = quota


class ServiceDraining(RuntimeError):
    """Service refuses new work while draining (maps to HTTP 503)."""


def workload_spec_dict(spec: WorkloadSpec) -> Dict[str, object]:
    """JSON form of a workload spec (inverse of ``_parse_spec``)."""
    return {
        "kind": spec.kind,
        "name": spec.name,
        "seed": spec.seed,
        "k": spec.k,
        "params": spec.params_dict(),
    }


def _parse_spec(data: object, index: int) -> WorkloadSpec:
    if not isinstance(data, dict):
        raise SubmissionError(
            f"modes[{index}] must be a workload-spec object, "
            f"got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"kind", "name", "seed", "k", "params"})
    if unknown:
        raise SubmissionError(
            f"modes[{index}]: unknown key(s) {', '.join(unknown)}"
        )
    kind = data.get("kind")
    kinds = registered_kinds()
    if kind not in kinds:
        raise SubmissionError(
            f"modes[{index}]: unknown workload kind {kind!r}; "
            f"registered kinds: {', '.join(kinds)}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise SubmissionError(
            f"modes[{index}]: 'name' must be a non-empty string"
        )
    seed = data.get("seed", 0)
    k = data.get("k", 4)
    for knob, value in (("seed", seed), ("k", k)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise SubmissionError(
                f"modes[{index}]: {knob!r} must be an integer, "
                f"got {value!r}"
            )
    params = data.get("params") or {}
    if not isinstance(params, dict) or not all(
        isinstance(key, str) for key in params
    ):
        raise SubmissionError(
            f"modes[{index}]: 'params' must be an object with "
            "string keys"
        )
    return WorkloadSpec.create(kind, name, seed=seed, k=k, **params)


@dataclass(frozen=True)
class FlowSubmission:
    """One validated flow request (the wire payload, canonicalised)."""

    name: str
    specs: Tuple[WorkloadSpec, ...]
    options: FlowOptions
    strategies: Tuple[MergeStrategy, ...]
    tenant: str = "default"
    priority: str = "batch"

    @classmethod
    def from_dict(cls, data: object) -> "FlowSubmission":
        """Validate an untrusted wire object; every error is explicit."""
        if not isinstance(data, dict):
            raise SubmissionError(
                "submission must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {
            "name", "modes", "options", "strategies", "tenant",
            "priority",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SubmissionError(
                f"unknown submission key(s): {', '.join(unknown)}; "
                f"known keys: {', '.join(sorted(known))}"
            )
        modes = data.get("modes")
        if not isinstance(modes, list) or not modes:
            raise SubmissionError(
                "'modes' must be a non-empty list of workload specs"
            )
        specs = tuple(
            _parse_spec(mode, index) for index, mode in enumerate(modes)
        )
        name = data.get("name") or "+".join(spec.name for spec in specs)
        if not isinstance(name, str):
            raise SubmissionError("'name' must be a string")
        try:
            options = FlowOptions.from_dict(data.get("options") or {})
        except ValueError as exc:
            raise SubmissionError(f"options: {exc}") from None
        raw = data.get("strategies")
        if raw is None:
            strategies = DEFAULT_STRATEGIES
        else:
            if not isinstance(raw, list) or not raw:
                raise SubmissionError(
                    "'strategies' must be a non-empty list of "
                    "merge-strategy names"
                )
            try:
                strategies = tuple(MergeStrategy(value) for value in raw)
            except ValueError:
                raise SubmissionError(
                    f"unknown merge strategy in {raw!r}; known: "
                    + ", ".join(s.value for s in MergeStrategy)
                ) from None
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise SubmissionError("'tenant' must be a non-empty string")
        priority = data.get("priority", "batch")
        if priority not in PRIORITY_LANES:
            raise SubmissionError(
                f"unknown priority {priority!r}; lanes: "
                + ", ".join(sorted(PRIORITY_LANES))
            )
        return cls(name, specs, options, strategies, tenant, priority)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "modes": [workload_spec_dict(spec) for spec in self.specs],
            "options": self.options.to_dict(),
            "strategies": [s.value for s in self.strategies],
            "tenant": self.tenant,
            "priority": self.priority,
        }

    def fingerprint(self) -> str:
        """Dedup identity == the ``campaign`` stage-cache key.

        Two submissions share this iff the worker would compute (and
        memoize) byte-identical QoR payloads, so in-flight dedup,
        completed dedup, and the persistent stage cache all agree on
        what "identical" means.
        """
        return StageCache.key(
            "campaign",
            *campaign_stage_inputs(
                self.specs, self.options, self.strategies
            ),
        )


class FlowRecord:
    """One deduplicated unit of server-side work and its lifecycle."""

    def __init__(
        self,
        flow_id: str,
        submission: FlowSubmission,
        fingerprint: str,
    ) -> None:
        self.id = flow_id
        self.submission = submission
        self.fingerprint = fingerprint
        self.created = time.time()
        self.finished: Optional[float] = None
        self.n_submissions = 1
        self.tenants = {submission.tenant}
        self.job: Optional[Job] = None
        self.payload: Optional[Dict[str, object]] = None
        #: Whether the worker's ``campaign`` stage was a cache hit —
        #: i.e. the QoR came from the persistent content-addressed
        #: store rather than a fresh flow execution.
        self.stage_cache_hit: Optional[bool] = None
        self.error: Optional[str] = None
        self._listeners: List[Callable[["FlowRecord"], None]] = []

    @property
    def state(self) -> JobState:
        return self.job.state if self.job is not None else JobState.PENDING

    def add_listener(self, callback: Callable[["FlowRecord"], None]) -> None:
        """``callback(record)`` after every job-state transition."""
        self._listeners.append(callback)

    def remove_listener(
        self, callback: Callable[["FlowRecord"], None]
    ) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _on_job_state(self, job: Job, state: JobState) -> None:
        if state is JobState.DONE:
            payload, stage_records = job.future.result()
            self.payload = payload
            self.stage_cache_hit = any(
                record.stage == "campaign" and record.cache_hit
                for record in stage_records
            )
            self.finished = time.time()
        elif state is JobState.FAILED:
            exc = job.future.exception()
            self.error = f"{type(exc).__name__}: {exc}"
            self.finished = time.time()
        elif state is JobState.CANCELLED:
            self.finished = time.time()
        for callback in list(self._listeners):
            callback(self)

    def describe(self, include_submission: bool = False) -> Dict[str, object]:
        """Wire-ready status object."""
        body: Dict[str, object] = {
            "id": self.id,
            "name": self.submission.name,
            "state": self.state.value,
            "fingerprint": self.fingerprint,
            "priority": self.submission.priority,
            "tenants": sorted(self.tenants),
            "n_submissions": self.n_submissions,
            "created": self.created,
            "finished": self.finished,
            "stage_cache_hit": self.stage_cache_hit,
            "error": self.error,
        }
        if include_submission:
            body["submission"] = self.submission.to_dict()
        return body


class FlowService:
    """Validated, deduplicated, quota'd flow execution over a JobGraph.

    Thread-safe; every transport shares one instance.  ``use_threads``
    runs flows on a thread pool instead of processes — the flow is
    pure compute, so this is mainly for tests and 1-core boxes where
    process spawn costs dominate the tiny workloads.
    """

    def __init__(
        self,
        workers: int = 2,
        use_threads: bool = False,
        cache: Optional[StageCache] = None,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        runner: Optional[Callable[..., object]] = None,
    ) -> None:
        executor = (
            ThreadJobExecutor(workers) if use_threads
            else ProcessJobExecutor(workers)
        )
        self.graph = JobGraph(executor)
        self.cache = cache if cache is not None else StageCache()
        self.tenant_quota = max(1, int(tenant_quota))
        #: The job body; swappable for tests.  Must match
        #: ``_campaign_run_worker``'s signature and return
        #: ``(payload, stage_records)``.
        self.runner = runner if runner is not None else _campaign_run_worker
        self.started = time.time()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._records: Dict[str, FlowRecord] = {}
        self._by_fingerprint: Dict[str, FlowRecord] = {}
        self.n_submitted = 0
        self.n_deduped = 0
        self.n_executed = 0
        self.n_quota_rejected = 0

    # -- submission ---------------------------------------------------

    def submit(
        self, submission: FlowSubmission
    ) -> Tuple[FlowRecord, bool]:
        """Register *submission*; returns ``(record, deduped)``.

        Raises :class:`ServiceDraining` or :class:`QuotaExceeded`.
        A failed or cancelled record never dedups — resubmitting
        retries the flow under a fresh record.
        """
        fp = submission.fingerprint()
        with self._lock:
            if self.graph.draining:
                raise ServiceDraining(
                    "server is draining; new submissions are refused"
                )
            existing = self._by_fingerprint.get(fp)
            if existing is not None and existing.state not in (
                JobState.FAILED, JobState.CANCELLED
            ):
                existing.n_submissions += 1
                existing.tenants.add(submission.tenant)
                self.n_submitted += 1
                self.n_deduped += 1
                return existing, True
            active = sum(
                1
                for record in self._records.values()
                if submission.tenant in record.tenants
                and not record.state.terminal
            )
            if active >= self.tenant_quota:
                self.n_quota_rejected += 1
                raise QuotaExceeded(
                    submission.tenant, active, self.tenant_quota
                )
            flow_id = f"flow-{next(self._ids):06d}"
            record = FlowRecord(flow_id, submission, fp)
            self._records[flow_id] = record
            self._by_fingerprint[fp] = record
            self.n_submitted += 1
            self.n_executed += 1
        try:
            job = self.graph.submit(
                self.runner,
                submission.name,
                submission.specs,
                submission.options,
                tuple(s.value for s in submission.strategies),
                str(self.cache.root) if self.cache.enabled else None,
                self.cache.enabled,
                name=flow_id,
                priority=PRIORITY_LANES[submission.priority],
            )
        except RuntimeError:
            # Drain began between the check and the submit.
            with self._lock:
                del self._records[flow_id]
                del self._by_fingerprint[fp]
                self.n_submitted -= 1
                self.n_executed -= 1
            raise ServiceDraining(
                "server is draining; new submissions are refused"
            ) from None
        record.job = job
        job.on_state(record._on_job_state)
        return record, False

    # -- queries ------------------------------------------------------

    def get(self, flow_id: str) -> Optional[FlowRecord]:
        with self._lock:
            return self._records.get(flow_id)

    def flows(self) -> List[FlowRecord]:
        with self._lock:
            return list(self._records.values())

    def cancel(self, record: FlowRecord) -> bool:
        """Cancel a still-pending flow (all attached submitters see it)."""
        return record.job is not None and self.graph.cancel(record.job)

    # -- admin --------------------------------------------------------

    def resize(self, workers: int) -> int:
        """Resize the worker pool; running flows finish where they are."""
        return self.graph.resize(workers)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new submissions; wait for in-flight flows to finish."""
        return self.graph.drain(timeout=timeout)

    @property
    def draining(self) -> bool:
        return self.graph.draining

    def stats(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._records.values():
                key = record.state.value
                states[key] = states.get(key, 0) + 1
        body = {
            "uptime_seconds": time.time() - self.started,
            "submitted": self.n_submitted,
            "deduped": self.n_deduped,
            "executed": self.n_executed,
            "quota_rejected": self.n_quota_rejected,
            "tenant_quota": self.tenant_quota,
            "flows_by_state": states,
            "cache_enabled": self.cache.enabled,
            "cache_root": str(self.cache.root) if self.cache.enabled else None,
        }
        body.update(self.graph.stats())
        return body

    def shutdown(self, wait: bool = True) -> None:
        self.graph.shutdown(wait=wait)
