"""Stdlib-only asyncio HTTP/1.1 front end for :class:`FlowService`.

No third-party web framework: requests are parsed off an
``asyncio.start_server`` stream, handlers are synchronous service
calls (the service is thread-safe and non-blocking except ``drain``,
which runs on a worker thread), and responses close the connection.
Flow execution itself never touches the event loop — jobs run on the
service's worker pool and completion arrives via job-state listeners
bridged with ``loop.call_soon_threadsafe``.

API (JSON bodies unless noted):

====== ============================ =====================================
GET    /v1/healthz                  liveness + drain state
GET    /v1/stats                    service/job-graph/dedup counters
POST   /v1/flows                    submit a flow; ``202`` on fresh
                                    execution, ``200`` with
                                    ``"deduped": true`` when attached to
                                    an identical in-flight/completed flow;
                                    ``400`` invalid, ``429`` over quota,
                                    ``503`` draining
GET    /v1/flows                    status list of every flow
GET    /v1/flows/<id>               one flow's status (+ submission echo)
GET    /v1/flows/<id>/result        QoR payload; ``409`` until done,
                                    ``500`` when the flow failed
GET    /v1/flows/<id>/events        SSE: one ``state`` event per job
                                    transition, closing after a terminal
                                    state (text/event-stream)
POST   /v1/flows/<id>/cancel        cancel while still queued
POST   /v1/admin/resize             ``{"workers": n}`` — live pool resize
POST   /v1/admin/drain              ``{"stop": bool}`` — refuse new
                                    submissions, wait for quiescence,
                                    optionally stop the server
====== ============================ =====================================
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Dict, Optional, Tuple

from repro.serve.service import (
    FlowRecord,
    FlowService,
    FlowSubmission,
    QuotaExceeded,
    ServiceDraining,
    SubmissionError,
)

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 8 * 1024 * 1024


class FlowServer:
    """One listening socket bound to one :class:`FlowService`."""

    def __init__(
        self,
        service: FlowService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Set once the socket is bound and ``self.port`` is final.
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------

    def serve_forever(self) -> None:
        """Run until :meth:`stop` (or drain with ``stop``) is called."""
        try:
            asyncio.run(self._main())
        finally:
            self.service.shutdown()

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()
        async with server:
            await self._stop.wait()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request plumbing ---------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._dispatch(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        except asyncio.TimeoutError:
            return None
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            key, sep, value = header.decode("latin1").partition(":")
            if sep:
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = _REASONS.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        if parts[:1] != ["v1"]:
            await self._respond(
                writer, 404, {"error": f"unknown path {path!r}"}
            )
            return
        rest = parts[1:]

        if rest == ["healthz"] and method == "GET":
            await self._respond(writer, 200, {
                "status": "draining" if self.service.draining else "ok",
            })
            return
        if rest == ["stats"] and method == "GET":
            await self._respond(writer, 200, self.service.stats())
            return
        if rest == ["flows"]:
            if method == "POST":
                await self._submit(body, writer)
            elif method == "GET":
                await self._respond(writer, 200, {
                    "flows": [
                        record.describe()
                        for record in self.service.flows()
                    ],
                })
            else:
                await self._respond(
                    writer, 405, {"error": f"{method} not allowed"}
                )
            return
        if len(rest) >= 2 and rest[0] == "flows":
            record = self.service.get(rest[1])
            if record is None:
                await self._respond(
                    writer, 404, {"error": f"no flow {rest[1]!r}"}
                )
                return
            await self._flow_endpoint(method, rest[2:], record, writer)
            return
        if rest == ["admin", "resize"] and method == "POST":
            await self._resize(body, writer)
            return
        if rest == ["admin", "drain"] and method == "POST":
            await self._drain(body, writer)
            return
        await self._respond(
            writer, 404, {"error": f"unknown path {path!r}"}
        )

    # -- handlers -----------------------------------------------------

    @staticmethod
    def _parse_body(body: bytes) -> object:
        if not body:
            return {}
        try:
            return json.loads(body)
        except ValueError as exc:
            raise SubmissionError(f"request body is not JSON: {exc}")

    async def _submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            submission = FlowSubmission.from_dict(self._parse_body(body))
            record, deduped = self.service.submit(submission)
        except SubmissionError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except QuotaExceeded as exc:
            await self._respond(writer, 429, {
                "error": str(exc),
                "tenant": exc.tenant,
                "active": exc.active,
                "quota": exc.quota,
            })
            return
        except ServiceDraining as exc:
            await self._respond(writer, 503, {"error": str(exc)})
            return
        payload = record.describe()
        payload["deduped"] = deduped
        await self._respond(writer, 200 if deduped else 202, payload)

    async def _flow_endpoint(
        self,
        method: str,
        tail: list,
        record: FlowRecord,
        writer: asyncio.StreamWriter,
    ) -> None:
        if not tail and method == "GET":
            await self._respond(
                writer, 200, record.describe(include_submission=True)
            )
            return
        if tail == ["result"] and method == "GET":
            state = record.state
            if record.payload is not None:
                await self._respond(writer, 200, {
                    "id": record.id,
                    "state": state.value,
                    "stage_cache_hit": record.stage_cache_hit,
                    "fingerprint": record.fingerprint,
                    "result": record.payload,
                })
            elif state.value == "failed":
                await self._respond(writer, 500, {
                    "id": record.id,
                    "state": state.value,
                    "error": record.error,
                })
            else:
                await self._respond(writer, 409, {
                    "id": record.id,
                    "state": state.value,
                    "error": "result not ready; poll status or /events",
                })
            return
        if tail == ["events"] and method == "GET":
            await self._events(record, writer)
            return
        if tail == ["cancel"] and method == "POST":
            cancelled = self.service.cancel(record)
            await self._respond(writer, 200, {
                "id": record.id,
                "cancelled": cancelled,
                "state": record.state.value,
            })
            return
        await self._respond(writer, 405, {
            "error": f"{method} /{'/'.join(tail)} not supported"
        })

    async def _events(
        self, record: FlowRecord, writer: asyncio.StreamWriter
    ) -> None:
        """SSE: stream state transitions until the flow is terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[str]" = asyncio.Queue()

        def listener(rec: FlowRecord) -> None:
            # Fires on a pool thread; hop onto the loop.
            loop.call_soon_threadsafe(queue.put_nowait, rec.state.value)

        record.add_listener(listener)
        try:
            while True:
                sent = record.state
                data = json.dumps(record.describe(), sort_keys=True)
                writer.write(
                    f"event: state\ndata: {data}\n\n".encode()
                )
                await writer.drain()
                if sent.terminal:
                    break
                try:
                    await asyncio.wait_for(queue.get(), timeout=15.0)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
        finally:
            record.remove_listener(listener)

    async def _resize(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            data = self._parse_body(body)
        except SubmissionError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        workers = data.get("workers") if isinstance(data, dict) else None
        if isinstance(workers, bool) or not isinstance(workers, int) \
                or workers < 1:
            await self._respond(writer, 400, {
                "error": "'workers' must be a positive integer"
            })
            return
        capacity = self.service.resize(workers)
        await self._respond(writer, 200, {"workers": capacity})

    async def _drain(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            data = self._parse_body(body)
        except SubmissionError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        stop = bool(data.get("stop")) if isinstance(data, dict) else False
        # Drain blocks until quiescent; keep the loop serving status
        # queries meanwhile.
        drained = await asyncio.to_thread(self.service.drain)
        await self._respond(writer, 200, {
            "drained": drained,
            "stopped": stop,
        })
        if stop:
            self.stop()


def main(
    service: FlowService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
) -> None:
    """Entry point used by ``repro serve``."""
    server = FlowServer(service, host=host, port=port)

    def announce() -> None:
        server.ready.wait()
        if not quiet:
            print(f"repro serve: listening on {server.url}", flush=True)
            print(
                "  submit with: repro submit --url "
                f"{server.url} --suite fir --scale tiny",
                flush=True,
            )

    threading.Thread(target=announce, daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
