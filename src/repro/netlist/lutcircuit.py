"""Mapped netlists of K-input LUT blocks.

A :class:`LutCircuit` is the output of technology mapping and the input
of the multi-mode merge and of place & route.  It matches the logic
block of the paper's FPGA architecture (``4lut_sanitized.arch``): each
block contains one K-input LUT and one flip-flop, with a configuration
bit selecting the combinational or the registered output.

Signals are identified by name; a block drives the signal of its own
name.  Primary inputs and outputs become IO pads at placement time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.truthtable import TruthTable


@dataclass(frozen=True)
class LutBlock:
    """One logic block: a K-LUT plus an optional registered output.

    ``inputs`` are the driving signal names (at most K of them; the
    physical LUT pads unused pins).  ``table`` has arity
    ``len(inputs)``.  When ``registered`` is True the block output is
    the flip-flop output (the FF samples the LUT output each cycle).
    """

    name: str
    inputs: Tuple[str, ...]
    table: TruthTable
    registered: bool = False
    init: bool = False

    def __post_init__(self) -> None:
        if self.table.n_vars != len(self.inputs):
            raise ValueError(
                f"block {self.name}: table arity {self.table.n_vars} "
                f"!= {len(self.inputs)} inputs"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(
                f"block {self.name}: duplicate input signals"
            )

    def with_inputs(
        self, inputs: Sequence[str], table: TruthTable
    ) -> "LutBlock":
        """Return a copy with a new input list / table pair."""
        return replace(self, inputs=tuple(inputs), table=table)


class LutCircuit:
    """A netlist of :class:`LutBlock` plus primary IOs.

    ``k`` is the LUT input count of the target architecture.  All blocks
    must have at most ``k`` inputs.
    """

    def __init__(self, name: str, k: int = 4) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.name = name
        self.k = k
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.blocks: Dict[str, LutBlock] = {}

    # -- construction ---------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> None:
        """Declare an existing signal as primary output."""
        if name in self.outputs:
            raise ValueError(f"duplicate output {name}")
        self.outputs.append(name)

    def add_block(
        self,
        name: str,
        inputs: Sequence[str],
        table: TruthTable,
        registered: bool = False,
        init: bool = False,
    ) -> str:
        """Add a logic block driving signal *name*."""
        self._check_fresh(name)
        if len(inputs) > self.k:
            raise ValueError(
                f"block {name}: {len(inputs)} inputs exceeds k={self.k}"
            )
        self.blocks[name] = LutBlock(
            name, tuple(inputs), table, registered, init
        )
        return name

    def _check_fresh(self, name: str) -> None:
        if name in self.blocks or name in self.inputs:
            raise ValueError(f"signal {name} already driven")

    # -- queries ------------------------------------------------------------

    def signals(self) -> Set[str]:
        """All driven signals (inputs + block outputs)."""
        return set(self.inputs) | set(self.blocks)

    def n_luts(self) -> int:
        """Number of logic blocks (the paper's Table I metric)."""
        return len(self.blocks)

    def connections(self) -> List[Tuple[str, str, int]]:
        """All (source signal, sink block, sink pin index) triples.

        Primary-output taps are reported with sink ``"out:<name>"`` and
        pin 0, so the whole routing workload of the circuit is visible.
        """
        conns: List[Tuple[str, str, int]] = []
        for block in self.blocks.values():
            for pin, src in enumerate(block.inputs):
                conns.append((src, block.name, pin))
        for out in self.outputs:
            conns.append((out, f"out:{out}", 0))
        return conns

    def fanouts(self) -> Dict[str, List[str]]:
        """Map signal -> block names reading it (outputs excluded)."""
        # Sorted: signals() is a string set, whose iteration order is
        # salted per process; callers must see a stable mapping order.
        result: Dict[str, List[str]] = {
            s: [] for s in sorted(self.signals())
        }
        for block in self.blocks.values():
            for src in block.inputs:
                result[src].append(block.name)
        return result

    def topological_blocks(self) -> List[LutBlock]:
        """Blocks in topological order over *combinational* edges.

        Registered blocks break cycles: their outputs are treated as
        sources (like primary inputs).
        """
        order: List[LutBlock] = []
        state: Dict[str, int] = {}

        def comb_fanins(block: LutBlock) -> Iterable[str]:
            for src in block.inputs:
                blk = self.blocks.get(src)
                if blk is not None and not blk.registered:
                    yield src

        for start in self.blocks:
            if state.get(start) == 1:
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            while stack:
                name, phase = stack.pop()
                block = self.blocks[name]
                if phase == 0:
                    if state.get(name) == 1:
                        continue
                    if state.get(name) == 0:
                        raise ValueError(
                            f"combinational cycle through {name}"
                        )
                    state[name] = 0
                    stack.append((name, 1))
                    for f in comb_fanins(block):
                        if state.get(f) != 1:
                            stack.append((f, 0))
                else:
                    state[name] = 1
                    order.append(block)
        return order

    def validate(self) -> None:
        """Check drivers exist, arity bounds hold, no comb. cycles."""
        signals = self.signals()
        for block in self.blocks.values():
            if len(block.inputs) > self.k:
                raise ValueError(
                    f"block {block.name} exceeds k={self.k}"
                )
            for src in block.inputs:
                if src not in signals:
                    raise ValueError(
                        f"block {block.name}: fanin {src} undriven"
                    )
        for out in self.outputs:
            if out not in signals:
                raise ValueError(f"output {out} undriven")
        self.topological_blocks()

    def depth(self) -> int:
        """Longest combinational path length in LUT levels."""
        level: Dict[str, int] = {}
        best = 0
        for block in self.topological_blocks():
            lvl = 1
            for src in block.inputs:
                blk = self.blocks.get(src)
                if blk is not None and not blk.registered:
                    lvl = max(lvl, level[src] + 1)
            level[block.name] = lvl
            best = max(best, lvl)
        return best

    def stats(self) -> Dict[str, int]:
        """Size statistics (LUT count, IOs, FFs, depth)."""
        return {
            "k": self.k,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "luts": len(self.blocks),
            "ffs": sum(1 for b in self.blocks.values() if b.registered),
            "depth": self.depth(),
        }

    def copy(self, name: Optional[str] = None) -> "LutCircuit":
        """Structural copy (blocks are immutable, safe to share)."""
        dup = LutCircuit(name or self.name, self.k)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.blocks = dict(self.blocks)
        return dup

    def renamed(self, mapping: Dict[str, str]) -> "LutCircuit":
        """Return a copy with signals renamed through *mapping*.

        Signals not in *mapping* keep their names.  Useful when giving
        the modes of a multi-mode circuit disjoint namespaces.
        """

        def rn(s: str) -> str:
            return mapping.get(s, s)

        dup = LutCircuit(self.name, self.k)
        dup.inputs = [rn(s) for s in self.inputs]
        dup.outputs = [rn(s) for s in self.outputs]
        for block in self.blocks.values():
            dup.blocks[rn(block.name)] = LutBlock(
                rn(block.name),
                tuple(rn(s) for s in block.inputs),
                block.table,
                block.registered,
                block.init,
            )
        return dup

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LutCircuit({self.name!r}, k={self.k}, {s['luts']} LUTs, "
            f"{s['inputs']} in, {s['outputs']} out, {s['ffs']} FFs)"
        )
