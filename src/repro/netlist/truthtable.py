"""Immutable truth tables over a small number of variables.

A :class:`TruthTable` stores the on-set of an *n*-input Boolean function
as an integer bit mask: bit *i* of :attr:`bits` is the function value for
the input assignment whose binary encoding is *i* (input 0 is the least
significant bit of the assignment).  This is exactly the layout of an
FPGA LUT's configuration bits, which is what the DCS merge step
manipulates (paper Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple


class TruthTable:
    """An immutable Boolean function of ``n_vars`` inputs.

    Construction checks that the bit mask fits ``2**n_vars`` entries.
    Instances are hashable and compare by (n_vars, bits).
    """

    __slots__ = ("_n", "_bits")

    def __init__(self, n_vars: int, bits: int) -> None:
        if n_vars < 0:
            raise ValueError("n_vars must be non-negative")
        if n_vars > 16:
            raise ValueError("truth tables above 16 vars are not supported")
        size = 1 << (1 << n_vars)
        if not 0 <= bits < size:
            raise ValueError(
                f"bits 0x{bits:x} out of range for {n_vars}-input table"
            )
        self._n = n_vars
        self._bits = bits

    # -- constructors ---------------------------------------------------

    @classmethod
    def const(cls, value: bool, n_vars: int = 0) -> "TruthTable":
        """Constant True/False as an *n_vars*-input table."""
        if value:
            return cls(n_vars, (1 << (1 << n_vars)) - 1)
        return cls(n_vars, 0)

    @classmethod
    def var(cls, index: int, n_vars: int) -> "TruthTable":
        """Projection of input *index* among *n_vars* inputs."""
        if not 0 <= index < n_vars:
            raise ValueError("variable index out of range")
        bits = 0
        for assignment in range(1 << n_vars):
            if assignment & (1 << index):
                bits |= 1 << assignment
        return cls(n_vars, bits)

    @classmethod
    def from_function(
        cls, n_vars: int, fn: Callable[..., bool]
    ) -> "TruthTable":
        """Build from a Python predicate of *n_vars* boolean arguments."""
        bits = 0
        for assignment in range(1 << n_vars):
            args = [bool(assignment & (1 << i)) for i in range(n_vars)]
            if fn(*args):
                bits |= 1 << assignment
        return cls(n_vars, bits)

    @classmethod
    def from_values(cls, values: Sequence[bool]) -> "TruthTable":
        """Build from the full output column (length must be a power of 2)."""
        n_entries = len(values)
        n_vars = n_entries.bit_length() - 1
        if 1 << n_vars != n_entries:
            raise ValueError("length must be a power of two")
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return cls(n_vars, bits)

    # -- basic queries ----------------------------------------------------

    @property
    def n_vars(self) -> int:
        """Number of input variables."""
        return self._n

    @property
    def bits(self) -> int:
        """On-set as an int bit mask (bit *i* = value at row *i*)."""
        return self._bits

    @property
    def n_entries(self) -> int:
        """Number of truth-table rows (= LUT configuration bits)."""
        return 1 << self._n

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Evaluate at the given input values (inputs[0] = variable 0)."""
        if len(inputs) != self._n:
            raise ValueError(
                f"expected {self._n} inputs, got {len(inputs)}"
            )
        assignment = 0
        for i, v in enumerate(inputs):
            if v:
                assignment |= 1 << i
        return bool(self._bits >> assignment & 1)

    def evaluate_index(self, assignment: int) -> bool:
        """Evaluate at an integer-encoded assignment."""
        if not 0 <= assignment < self.n_entries:
            raise ValueError("assignment out of range")
        return bool(self._bits >> assignment & 1)

    def values(self) -> List[bool]:
        """The full output column, assignment 0 first."""
        return [bool(self._bits >> i & 1) for i in range(self.n_entries)]

    def is_const(self) -> bool:
        """True when the function is constant."""
        return self._bits in (0, (1 << self.n_entries) - 1)

    def const_value(self) -> bool:
        """Value of a constant function (raises if not constant)."""
        if self._bits == 0:
            return False
        if self._bits == (1 << self.n_entries) - 1:
            return True
        raise ValueError("truth table is not constant")

    def support(self) -> List[int]:
        """Indices of variables the function actually depends on."""
        return [
            i
            for i in range(self._n)
            if self.cofactor(i, False) != self.cofactor(i, True)
        ]

    # -- algebra ----------------------------------------------------------

    def _binary(self, other: "TruthTable", op: Callable[[int, int], int]
                ) -> "TruthTable":
        if self._n != other._n:
            raise ValueError("operand arities differ")
        mask = (1 << self.n_entries) - 1
        return TruthTable(self._n, op(self._bits, other._bits) & mask)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a ^ b)

    def __invert__(self) -> "TruthTable":
        mask = (1 << self.n_entries) - 1
        return TruthTable(self._n, ~self._bits & mask)

    # -- structural operations ---------------------------------------------

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor: fix *var* to *value* (arity stays the same)."""
        if not 0 <= var < self._n:
            raise ValueError("variable index out of range")
        bits = 0
        vbit = 1 << var
        for assignment in range(self.n_entries):
            src = (assignment | vbit) if value else (assignment & ~vbit)
            if self._bits >> src & 1:
                bits |= 1 << assignment
        return TruthTable(self._n, bits)

    def restrict(self, var: int, value: bool) -> "TruthTable":
        """Cofactor and *remove* the variable (arity drops by one)."""
        if not 0 <= var < self._n:
            raise ValueError("variable index out of range")
        bits = 0
        out_index = 0
        vbit = 1 << var
        low_mask = vbit - 1
        for assignment in range(self.n_entries):
            if bool(assignment & vbit) != value:
                continue
            if self._bits >> assignment & 1:
                bits |= 1 << out_index
            out_index += 1
        del low_mask
        return TruthTable(self._n - 1, bits)

    def expand(self, positions: Sequence[int], new_n: int) -> "TruthTable":
        """Re-express over *new_n* variables.

        ``positions[i]`` gives the new index of old variable *i*.  The
        function is independent of the added variables.
        """
        if len(positions) != self._n:
            raise ValueError("positions must map every old variable")
        if len(set(positions)) != len(positions):
            raise ValueError("positions must be distinct")
        if any(not 0 <= p < new_n for p in positions):
            raise ValueError("position out of range")
        bits = 0
        for assignment in range(1 << new_n):
            old = 0
            for i, p in enumerate(positions):
                if assignment & (1 << p):
                    old |= 1 << i
            if self._bits >> old & 1:
                bits |= 1 << assignment
        return TruthTable(new_n, bits)

    def permute(self, order: Sequence[int]) -> "TruthTable":
        """Reorder inputs: new variable ``order[i]`` is old variable *i*."""
        return self.expand(order, self._n)

    def compose(self, subs: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute each input by a function of a common variable set.

        All tables in *subs* must share the same arity *m*; the result is
        an *m*-input table ``f(g0(x), g1(x), ...)``.
        """
        if len(subs) != self._n:
            raise ValueError("need one substitution per input")
        if self._n == 0:
            return TruthTable(0, self._bits)
        m = subs[0].n_vars
        if any(s.n_vars != m for s in subs):
            raise ValueError("substitutions must share one arity")
        bits = 0
        for assignment in range(1 << m):
            inner = 0
            for i, g in enumerate(subs):
                if g._bits >> assignment & 1:
                    inner |= 1 << i
            if self._bits >> inner & 1:
                bits |= 1 << assignment
        return TruthTable(m, bits)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._n == other._n and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._n, self._bits))

    def __repr__(self) -> str:
        width = max(1, self.n_entries // 4)
        return f"TruthTable({self._n}, 0x{self._bits:0{width}x})"


def cube_to_minterms(cube: str) -> Iterable[int]:
    """Expand a BLIF-style input cube (e.g. ``1-0``) into assignments.

    Character *i* of the cube refers to variable *i* (BLIF order); ``-``
    is a don't-care.  Yields integer assignments with variable 0 in the
    least significant bit.
    """
    free: List[int] = []
    base = 0
    for i, ch in enumerate(cube):
        if ch == "1":
            base |= 1 << i
        elif ch == "-":
            free.append(i)
        elif ch != "0":
            raise ValueError(f"bad cube character {ch!r}")
    for combo in range(1 << len(free)):
        assignment = base
        for j, var in enumerate(free):
            if combo & (1 << j):
                assignment |= 1 << var
        yield assignment


def minterms_to_cubes(table: TruthTable) -> List[str]:
    """Render a table as a list of minterm cubes (one per on-set row)."""
    cubes = []
    for assignment in range(table.n_entries):
        if table.evaluate_index(assignment):
            cube = "".join(
                "1" if assignment & (1 << i) else "0"
                for i in range(table.n_vars)
            )
            cubes.append(cube)
    return cubes


def table_pair_merge_bits(
    tables: Sequence[TruthTable],
) -> List[Tuple[int, ...]]:
    """Per-row tuple of values across *tables* (all same arity).

    Convenience used by the Tunable-LUT generator (paper Fig. 4): row *r*
    of the result is the vector of bit values the physical LUT must take
    in each mode.
    """
    if not tables:
        return []
    n = tables[0].n_vars
    if any(t.n_vars != n for t in tables):
        raise ValueError("tables must share one arity")
    return [
        tuple(int(t.evaluate_index(r)) for t in tables)
        for r in range(1 << n)
    ]
