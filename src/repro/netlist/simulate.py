"""Netlist simulation — the functional-equivalence oracle.

Both intermediate representations (logic networks and LUT circuits) can
be simulated cycle-accurately.  The test suite relies on this to verify
that every transformation in the flow (synthesis optimisation,
technology mapping, multi-mode merging, Tunable-LUT specialisation)
preserves functionality.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit


def simulate_logic_step(
    network: LogicNetwork,
    inputs: Mapping[str, bool],
    state: Mapping[str, bool],
) -> Dict[str, bool]:
    """Evaluate all signals for one combinational step.

    *state* maps latch names to their current output values.  Returns
    the value of every signal (inputs, latch outputs and node outputs).
    """
    values: Dict[str, bool] = {}
    for name in network.inputs:
        if name not in inputs:
            raise KeyError(f"missing value for input {name}")
        values[name] = bool(inputs[name])
    for name in network.latches:
        values[name] = bool(state.get(name, network.latches[name].init))
    for node in network.topological_nodes():
        args = [values[f] for f in node.fanins]
        values[node.name] = node.table.evaluate(args)
    return values


def simulate_logic(
    network: LogicNetwork,
    input_sequence: Sequence[Mapping[str, bool]],
) -> List[Dict[str, bool]]:
    """Simulate *network* for ``len(input_sequence)`` clock cycles.

    Latches start at their declared init values.  Returns, per cycle,
    the map of primary-output values observed *before* the clock edge.
    """
    state: Dict[str, bool] = {
        name: latch.init for name, latch in network.latches.items()
    }
    trace: List[Dict[str, bool]] = []
    for inputs in input_sequence:
        values = simulate_logic_step(network, inputs, state)
        trace.append({out: values[out] for out in network.outputs})
        state = {
            name: values[latch.data]
            for name, latch in network.latches.items()
        }
    return trace


def simulate_lut_step(
    circuit: LutCircuit,
    inputs: Mapping[str, bool],
    state: Mapping[str, bool],
) -> Dict[str, bool]:
    """One combinational evaluation of a LUT circuit.

    *state* maps registered block names to their FF output values.
    Returned map contains every signal plus, for registered blocks, the
    combinational LUT output under key ``"<name>$d"`` (the FF's next
    value).
    """
    values: Dict[str, bool] = {}
    for name in circuit.inputs:
        if name not in inputs:
            raise KeyError(f"missing value for input {name}")
        values[name] = bool(inputs[name])
    for block in circuit.blocks.values():
        if block.registered:
            values[block.name] = bool(state.get(block.name, block.init))
    for block in circuit.topological_blocks():
        args = [values[s] for s in block.inputs]
        result = block.table.evaluate(args)
        if block.registered:
            values[block.name + "$d"] = result
        else:
            values[block.name] = result
    return values


def simulate_lut(
    circuit: LutCircuit,
    input_sequence: Sequence[Mapping[str, bool]],
) -> List[Dict[str, bool]]:
    """Simulate a LUT circuit for several cycles; see ``simulate_logic``."""
    state: Dict[str, bool] = {
        b.name: b.init for b in circuit.blocks.values() if b.registered
    }
    trace: List[Dict[str, bool]] = []
    for inputs in input_sequence:
        values = simulate_lut_step(circuit, inputs, state)
        trace.append({out: values[out] for out in circuit.outputs})
        state = {name: values[name + "$d"] for name in state}
    return trace


def random_vectors(
    inputs: Sequence[str], n_cycles: int, rng
) -> List[Dict[str, bool]]:
    """Generate *n_cycles* random input maps for the given input names."""
    return [
        {name: bool(rng.getrandbits(1)) for name in inputs}
        for _ in range(n_cycles)
    ]


def equivalent(
    a, b, n_cycles: int = 32, rng=None, n_runs: int = 4
) -> bool:
    """Randomised sequential equivalence check between two netlists.

    *a* and *b* may each be a :class:`LogicNetwork` or
    :class:`LutCircuit`; they must agree on input and output names.
    Runs ``n_runs`` random input sequences of ``n_cycles`` cycles and
    compares the full output traces.  This is a Monte-Carlo check, not a
    proof, but with the circuit sizes in this package it is a strong
    oracle and is how all flow invariants are tested.
    """
    import random as _random

    rng = rng or _random.Random(0x5EED)
    if sorted(a.inputs) != sorted(b.inputs):
        raise ValueError("input sets differ")
    if sorted(a.outputs) != sorted(b.outputs):
        raise ValueError("output sets differ")

    def run(netlist, seq):
        if isinstance(netlist, LogicNetwork):
            return simulate_logic(netlist, seq)
        if isinstance(netlist, LutCircuit):
            return simulate_lut(netlist, seq)
        raise TypeError(f"cannot simulate {type(netlist).__name__}")

    for _ in range(n_runs):
        seq = random_vectors(list(a.inputs), n_cycles, rng)
        if run(a, seq) != run(b, seq):
            return False
    return True


def output_trace_names(trace: Iterable[Mapping[str, bool]]) -> List[str]:
    """Sorted output names present in a simulation trace."""
    for cycle in trace:
        return sorted(cycle)
    return []
