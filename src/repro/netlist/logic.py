"""Technology-independent logic networks.

A :class:`LogicNetwork` is a DAG of combinational nodes plus latches
(D flip-flops).  Every combinational node carries a
:class:`~repro.netlist.truthtable.TruthTable` over its fanins, which
uniformly represents simple gates, BLIF ``.names`` functions and LUTs.

This is the intermediate representation between synthesis and the
technology mapper (paper Fig. 1: "logic network" between *Synthesis* and
*Technology mapping*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.truthtable import TruthTable


@dataclass(frozen=True)
class Node:
    """One combinational node: a truth table over named fanins."""

    name: str
    fanins: Tuple[str, ...]
    table: TruthTable

    def __post_init__(self) -> None:
        if self.table.n_vars != len(self.fanins):
            raise ValueError(
                f"node {self.name}: table arity {self.table.n_vars} "
                f"!= {len(self.fanins)} fanins"
            )


@dataclass(frozen=True)
class Latch:
    """A D flip-flop: samples signal *data* every clock, drives *name*."""

    name: str
    data: str
    init: bool = False


class LogicNetwork:
    """A named DAG of truth-table nodes and latches.

    Signals are identified by name.  A signal is driven by exactly one
    of: a primary input, a combinational node, or a latch output.
    Primary outputs reference existing signals.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nodes: Dict[str, Node] = {}
        self.latches: Dict[str, Latch] = {}

    # -- construction -----------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> None:
        """Declare signal *name* as a primary output."""
        if name in self.outputs:
            raise ValueError(f"duplicate output {name}")
        self.outputs.append(name)

    def add_node(
        self, name: str, fanins: Sequence[str], table: TruthTable
    ) -> str:
        """Add a combinational node driving signal *name*."""
        self._check_fresh(name)
        self.nodes[name] = Node(name, tuple(fanins), table)
        return name

    def add_latch(self, name: str, data: str, init: bool = False) -> str:
        """Add a D flip-flop driving signal *name* from signal *data*."""
        self._check_fresh(name)
        self.latches[name] = Latch(name, data, init)
        return name

    def _check_fresh(self, name: str) -> None:
        if name in self.nodes or name in self.latches or name in self.inputs:
            raise ValueError(f"signal {name} already driven")

    # -- gate-level sugar ---------------------------------------------------

    def _gate(
        self, name: str, fanins: Sequence[str], table: TruthTable
    ) -> str:
        return self.add_node(name, fanins, table)

    def add_const(self, name: str, value: bool) -> str:
        """Constant 0/1 driver."""
        return self._gate(name, (), TruthTable.const(value, 0))

    def add_buf(self, name: str, a: str) -> str:
        """Buffer (identity)."""
        return self._gate(name, (a,), TruthTable.var(0, 1))

    def add_not(self, name: str, a: str) -> str:
        """Inverter."""
        return self._gate(name, (a,), ~TruthTable.var(0, 1))

    def _nary(
        self, name: str, fanins: Sequence[str], op: str
    ) -> str:
        n = len(fanins)
        if n == 0:
            raise ValueError(f"{op} gate needs at least one fanin")
        acc = TruthTable.var(0, n)
        for i in range(1, n):
            v = TruthTable.var(i, n)
            if op == "and":
                acc = acc & v
            elif op == "or":
                acc = acc | v
            elif op == "xor":
                acc = acc ^ v
            else:  # pragma: no cover - internal misuse
                raise ValueError(op)
        return self._gate(name, fanins, acc)

    def add_and(self, name: str, fanins: Sequence[str]) -> str:
        """N-ary AND."""
        return self._nary(name, fanins, "and")

    def add_or(self, name: str, fanins: Sequence[str]) -> str:
        """N-ary OR."""
        return self._nary(name, fanins, "or")

    def add_xor(self, name: str, fanins: Sequence[str]) -> str:
        """N-ary XOR (parity)."""
        return self._nary(name, fanins, "xor")

    def add_mux(self, name: str, sel: str, a: str, b: str) -> str:
        """2:1 multiplexer: ``sel ? b : a``."""
        table = TruthTable.from_function(
            3, lambda s, x, y: y if s else x
        )
        return self._gate(name, (sel, a, b), table)

    # -- queries ------------------------------------------------------------

    def driver_kind(self, name: str) -> str:
        """Return 'input', 'node' or 'latch' for signal *name*."""
        if name in self.nodes:
            return "node"
        if name in self.latches:
            return "latch"
        if name in self.inputs:
            return "input"
        raise KeyError(f"signal {name} is not driven")

    def signals(self) -> Set[str]:
        """All driven signal names."""
        return set(self.inputs) | set(self.nodes) | set(self.latches)

    def fanouts(self) -> Dict[str, List[str]]:
        """Map signal -> list of node/latch names reading it."""
        # Sorted: signals() is a string set, whose iteration order is
        # salted per process; callers must see a stable mapping order.
        result: Dict[str, List[str]] = {
            s: [] for s in sorted(self.signals())
        }
        for node in self.nodes.values():
            for f in node.fanins:
                result[f].append(node.name)
        for latch in self.latches.values():
            result[latch.data].append(latch.name)
        return result

    def topological_nodes(self) -> List[Node]:
        """Combinational nodes in topological order.

        Latch outputs and primary inputs are sources.  Raises
        ``ValueError`` on a combinational cycle or undriven fanin.
        """
        order: List[Node] = []
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        for start in self.nodes:
            if start in state:
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            while stack:
                name, phase = stack.pop()
                if phase == 0:
                    if state.get(name) == 1:
                        continue
                    if state.get(name) == 0:
                        raise ValueError(
                            f"combinational cycle through {name}"
                        )
                    state[name] = 0
                    stack.append((name, 1))
                    node = self.nodes[name]
                    for f in node.fanins:
                        if f in self.nodes and state.get(f) != 1:
                            stack.append((f, 0))
                        elif (
                            f not in self.nodes
                            and f not in self.latches
                            and f not in self.inputs
                        ):
                            raise ValueError(
                                f"node {name}: fanin {f} is undriven"
                            )
                else:
                    state[name] = 1
                    order.append(self.nodes[name])
        return order

    def validate(self) -> None:
        """Check structural sanity (drivers exist, no cycles)."""
        for out in self.outputs:
            if out not in self.signals():
                raise ValueError(f"output {out} is undriven")
        for latch in self.latches.values():
            if latch.data not in self.signals():
                raise ValueError(
                    f"latch {latch.name}: data {latch.data} undriven"
                )
        self.topological_nodes()

    def stats(self) -> Dict[str, int]:
        """Basic size statistics."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "nodes": len(self.nodes),
            "latches": len(self.latches),
            "max_fanin": max(
                (len(n.fanins) for n in self.nodes.values()), default=0
            ),
        }

    def copy(self, name: Optional[str] = None) -> "LogicNetwork":
        """Shallow-structural copy (nodes are immutable, safe to share)."""
        dup = LogicNetwork(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.nodes = dict(self.nodes)
        dup.latches = dict(self.latches)
        return dup

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LogicNetwork({self.name!r}, {s['inputs']} in, "
            f"{s['outputs']} out, {s['nodes']} nodes, "
            f"{s['latches']} latches)"
        )


def fresh_namer(network: LogicNetwork, prefix: str) -> "_Namer":
    """Return a callable generating names unused in *network*."""
    return _Namer(network, prefix)


class _Namer:
    def __init__(self, network: LogicNetwork, prefix: str) -> None:
        self._network = network
        self._prefix = prefix
        self._counter = 0

    def __call__(self) -> str:
        while True:
            name = f"{self._prefix}{self._counter}"
            self._counter += 1
            if name not in self._network.signals():
                return name


def iter_cone(
    network: LogicNetwork, roots: Iterable[str]
) -> Set[str]:
    """Signals in the transitive combinational fanin cone of *roots*.

    The cone stops at primary inputs and latch outputs; those boundary
    signals are included in the result.
    """
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in network.nodes:
            stack.extend(network.nodes[name].fanins)
    return seen
