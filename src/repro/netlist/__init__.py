"""Netlist representations: logic networks, truth tables, LUT circuits.

This subpackage is the substrate every other layer builds on:

* :mod:`repro.netlist.truthtable` — immutable truth tables (the contents
  of LUTs and of technology-independent logic nodes).
* :mod:`repro.netlist.logic` — a technology-independent logic network
  (DAG of truth-table nodes plus latches), the output of synthesis and
  the input of technology mapping.
* :mod:`repro.netlist.lutcircuit` — the mapped netlist of K-LUT blocks
  (one LUT + optional flip-flop per block), the representation that the
  multi-mode merge and the place & route tools operate on.
* :mod:`repro.netlist.blif` — Berkeley Logic Interchange Format I/O.
* :mod:`repro.netlist.simulate` — cycle-accurate simulation used as the
  functional-equivalence oracle throughout the test suite.
"""

from repro.netlist.lutcircuit import LutBlock, LutCircuit
from repro.netlist.logic import LogicNetwork
from repro.netlist.truthtable import TruthTable
from repro.netlist.verilog import write_verilog

__all__ = [
    "TruthTable",
    "LogicNetwork",
    "LutBlock",
    "LutCircuit",
    "write_verilog",
]
