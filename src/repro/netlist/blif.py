"""Berkeley Logic Interchange Format (BLIF) reader and writer.

The MCNC benchmark circuits used in the paper's third experiment are
distributed as BLIF; this module lets real MCNC ``.blif`` files drop
straight into the flow and also round-trips our own circuits.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(sum-of-products cover with ``0/1/-`` cubes, on-set and off-set covers),
``.latch`` (with or without clock/type fields) and ``.end``.  Unsupported
directives raise :class:`BlifError` rather than being silently skipped.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import (
    TruthTable,
    cube_to_minterms,
    minterms_to_cubes,
)


class BlifError(ValueError):
    """Raised on malformed or unsupported BLIF input."""


def _logical_lines(stream: Iterable[str]) -> Iterable[Tuple[int, str]]:
    """Yield (line_number, logical line) with continuations joined.

    Comments (``#`` to end of line) are stripped; backslash line
    continuations are folded; blank lines are skipped.
    """
    pending = ""
    pending_no = 0
    for no, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].rstrip()
        if pending:
            line = pending + " " + line.lstrip()
            no = pending_no
            pending = ""
        if line.endswith("\\"):
            pending = line[:-1].rstrip()
            pending_no = no
            continue
        if line.strip():
            yield no, line.strip()
    if pending:
        yield pending_no, pending


def _parse_names_cover(
    fanins: Sequence[str], rows: Sequence[Tuple[str, str]], where: str
) -> TruthTable:
    """Build a TruthTable from a ``.names`` cover.

    *rows* are (input cube, output value) pairs.  BLIF requires all
    output values in one cover to agree; a ``0`` output lists the
    off-set.  A node with no rows is constant 0; a single row with an
    empty cube sets the constant by its output value.
    """
    n = len(fanins)
    if not rows:
        return TruthTable.const(False, n)
    out_values = {out for _, out in rows}
    if len(out_values) != 1:
        raise BlifError(f"{where}: mixed on-set/off-set cover")
    out_value = rows[0][1]
    bits = 0
    for cube, _ in rows:
        if len(cube) != n:
            raise BlifError(
                f"{where}: cube {cube!r} does not match "
                f"{n} fanins"
            )
        for minterm in cube_to_minterms(cube):
            bits |= 1 << minterm
    table = TruthTable(n, bits)
    if out_value == "0":
        table = ~table
    return table


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF *text* into a :class:`LogicNetwork`.

    Only the first ``.model`` in the file is read (hierarchical BLIF via
    ``.subckt`` is not supported by this flow).
    """
    return read_blif(io.StringIO(text))


def read_blif(stream: TextIO) -> LogicNetwork:
    """Parse BLIF from a file object; see :func:`parse_blif`."""
    network: Optional[LogicNetwork] = None
    # Node bodies are collected first and committed at .end so fanins
    # declared later in the file resolve.
    pending_nodes: List[Tuple[str, Tuple[str, ...], TruthTable]] = []
    pending_latches: List[Tuple[str, str, bool]] = []
    current: Optional[Tuple[Tuple[str, ...], str]] = None
    current_rows: List[Tuple[str, str]] = []
    ended = False

    def commit_current() -> None:
        nonlocal current, current_rows
        if current is None:
            return
        fanins, output = current
        table = _parse_names_cover(
            fanins, current_rows, f".names {output}"
        )
        pending_nodes.append((output, fanins, table))
        current = None
        current_rows = []

    for no, line in _logical_lines(stream):
        if ended:
            break
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            commit_current()
            if directive == ".model":
                if network is not None:
                    raise BlifError(
                        f"line {no}: multiple .model sections"
                    )
                network = LogicNetwork(
                    parts[1] if len(parts) > 1 else "top"
                )
            elif directive == ".inputs":
                _require_model(network, no)
                for name in parts[1:]:
                    network.add_input(name)
            elif directive == ".outputs":
                _require_model(network, no)
                for name in parts[1:]:
                    network.add_output(name)
            elif directive == ".names":
                _require_model(network, no)
                if len(parts) < 2:
                    raise BlifError(f"line {no}: .names needs an output")
                current = (tuple(parts[1:-1]), parts[-1])
                current_rows = []
            elif directive == ".latch":
                _require_model(network, no)
                if len(parts) < 3:
                    raise BlifError(
                        f"line {no}: .latch needs input and output"
                    )
                data, out = parts[1], parts[2]
                init = "0"
                # Optional fields: [type control] [init]
                tail = parts[3:]
                if tail:
                    init = tail[-1]
                init_bool = init in ("1",)
                pending_latches.append((out, data, init_bool))
            elif directive == ".end":
                ended = True
            elif directive in (".exdc", ".subckt", ".gate", ".mlatch",
                               ".clock"):
                if directive == ".clock":
                    continue  # single global clock; nothing to record
                raise BlifError(
                    f"line {no}: unsupported directive {directive}"
                )
            else:
                raise BlifError(
                    f"line {no}: unknown directive {directive}"
                )
        else:
            if current is None:
                raise BlifError(f"line {no}: cube outside .names")
            parts = line.split()
            fanins, _output = current
            if len(fanins) == 0:
                if len(parts) != 1:
                    raise BlifError(f"line {no}: bad constant row")
                current_rows.append(("", parts[0]))
            else:
                if len(parts) != 2:
                    raise BlifError(f"line {no}: bad cover row")
                current_rows.append((parts[0], parts[1]))

    commit_current()
    if network is None:
        raise BlifError("no .model section found")
    for out, data, init in pending_latches:
        network.add_latch(out, data, init)
    for name, fanins, table in pending_nodes:
        network.add_node(name, fanins, table)
    network.validate()
    return network


def _require_model(network: Optional[LogicNetwork], line_no: int) -> None:
    if network is None:
        raise BlifError(f"line {line_no}: directive before .model")


def read_blif_file(path: str) -> LogicNetwork:
    """Parse a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_blif(handle)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_logic_blif(network: LogicNetwork) -> str:
    """Serialise a :class:`LogicNetwork` to BLIF text."""
    out = io.StringIO()
    out.write(f".model {network.name}\n")
    _write_name_list(out, ".inputs", network.inputs)
    _write_name_list(out, ".outputs", network.outputs)
    for latch in network.latches.values():
        out.write(
            f".latch {latch.data} {latch.name} re clk "
            f"{1 if latch.init else 0}\n"
        )
    for node in network.topological_nodes():
        _write_names(out, node.name, node.fanins, node.table)
    out.write(".end\n")
    return out.getvalue()


def write_lut_blif(circuit: LutCircuit) -> str:
    """Serialise a :class:`LutCircuit` to BLIF text.

    Registered blocks are emitted as a ``.names`` for the LUT feeding a
    ``.latch``; the intermediate combinational signal is suffixed
    ``$d``.
    """
    out = io.StringIO()
    out.write(f".model {circuit.name}\n")
    _write_name_list(out, ".inputs", circuit.inputs)
    _write_name_list(out, ".outputs", circuit.outputs)
    for block in circuit.blocks.values():
        if block.registered:
            out.write(
                f".latch {block.name}$d {block.name} re clk "
                f"{1 if block.init else 0}\n"
            )
    for block in circuit.topological_blocks():
        target = block.name + "$d" if block.registered else block.name
        _write_names(out, target, block.inputs, block.table)
    out.write(".end\n")
    return out.getvalue()


def _write_name_list(
    out: TextIO, directive: str, names: Sequence[str]
) -> None:
    out.write(directive)
    for name in names:
        out.write(f" {name}")
    out.write("\n")


def _write_names(
    out: TextIO, output: str, fanins: Sequence[str], table: TruthTable
) -> None:
    out.write(".names")
    for f in fanins:
        out.write(f" {f}")
    out.write(f" {output}\n")
    if table.n_vars == 0:
        if table.const_value():
            out.write("1\n")
        return
    n_on = sum(table.values())
    if n_on == 0:
        return  # empty cover = constant 0
    if n_on > table.n_entries // 2:
        # Emit the (smaller) off-set cover.
        for cube in minterms_to_cubes(~table):
            out.write(f"{cube} 0\n")
    else:
        for cube in minterms_to_cubes(table):
            out.write(f"{cube} 1\n")


def logic_from_lut_circuit(circuit: LutCircuit) -> LogicNetwork:
    """Lower a LUT circuit back into a logic network (for re-mapping)."""
    network = LogicNetwork(circuit.name)
    for name in circuit.inputs:
        network.add_input(name)
    for block in circuit.blocks.values():
        if block.registered:
            network.add_latch(block.name, block.name + "$d", block.init)
    for block in circuit.blocks.values():
        target = block.name + "$d" if block.registered else block.name
        network.add_node(target, block.inputs, block.table)
    for out in circuit.outputs:
        network.add_output(out)
    network.validate()
    return network
