"""Stable public facade of the repro package.

External callers — server handlers, notebooks, scripts, other
services — should import from here (or from :mod:`repro` directly,
which re-exports everything below) instead of deep module paths: the
internal layout is free to move, this surface is not.

Three typed entry points cover the common lifecycles:

* :func:`implement` — run the multi-mode flow (MDR + DCS) on built
  circuits, in-process.
* :func:`run_campaign` — execute a QoR sweep (a
  :class:`~repro.bench.campaign.CampaignSpec` or a preset name),
  in-process.
* :func:`submit_flow` — hand a flow to a running ``repro serve``
  instance over HTTP and (optionally) wait for its QoR payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gen.spec import WorkloadSpec

from repro.core.flow import (
    FlowOptions,
    MultiModeResult,
    implement_multi_mode,
)
from repro.core.merge import MergeStrategy
from repro.netlist.lutcircuit import LutCircuit

__all__ = [
    "FlowOptions",
    "MergeStrategy",
    "MultiModeResult",
    "implement",
    "run_campaign",
    "submit_flow",
]


def _coerce_strategies(
    strategies: Optional[Sequence[Union[str, MergeStrategy]]],
) -> Optional[tuple]:
    if strategies is None:
        return None
    return tuple(MergeStrategy(s) for s in strategies)


def implement(
    name: str,
    mode_circuits: Sequence[LutCircuit],
    options: Optional[FlowOptions] = None,
    *,
    strategies: Optional[Sequence[Union[str, MergeStrategy]]] = None,
    workers: Optional[int] = None,
    cache=None,
    progress=None,
) -> MultiModeResult:
    """Implement one multi-mode circuit with both flows (MDR + DCS).

    Strategy values may be :class:`MergeStrategy` members or their
    string values (``"wire_length"``, ...).  ``workers=None`` honours
    ``REPRO_WORKERS`` (default serial); pass a
    :class:`~repro.exec.cache.StageCache` to memoize stages.
    """
    kwargs = {}
    coerced = _coerce_strategies(strategies)
    if coerced is not None:
        kwargs["strategies"] = coerced
    return implement_multi_mode(
        name,
        mode_circuits,
        options,
        workers=workers,
        cache=cache,
        progress=progress,
        **kwargs,
    )


def run_campaign(
    spec,
    *,
    workers: Optional[int] = None,
    cache=None,
    progress=None,
    verbose: bool = False,
    checkpoint: Optional[str] = None,
    resume: bool = False,
):
    """Execute a QoR campaign; *spec* is a ``CampaignSpec`` or preset name.

    Returns a :class:`~repro.bench.campaign.CampaignResult`.  See
    :func:`repro.bench.campaign.run_campaign` for checkpoint/resume
    semantics (the JSONL file is both artefact and checkpoint).
    """
    from repro.bench.campaign import PRESETS, CampaignSpec
    from repro.bench.campaign import run_campaign as _run_campaign

    if isinstance(spec, str):
        try:
            spec = PRESETS[spec]
        except KeyError:
            raise ValueError(
                f"unknown campaign preset {spec!r}; presets: "
                + ", ".join(sorted(PRESETS))
            ) from None
    elif not isinstance(spec, CampaignSpec):
        raise TypeError(
            "spec must be a CampaignSpec or a preset name, got "
            f"{type(spec).__name__}"
        )
    return _run_campaign(
        spec,
        workers=workers,
        cache=cache,
        progress=progress,
        verbose=verbose,
        checkpoint=checkpoint,
        resume=resume,
    )


def submit_flow(
    url: str,
    *,
    modes: Sequence[Union[Dict[str, object], "WorkloadSpec"]],
    options: Optional[Union[Dict[str, object], FlowOptions]] = None,
    name: Optional[str] = None,
    strategies: Optional[Sequence[Union[str, MergeStrategy]]] = None,
    tenant: str = "default",
    priority: str = "batch",
    wait: bool = False,
    timeout: float = 600.0,
) -> Dict[str, object]:
    """Submit one flow to a running ``repro serve`` instance.

    *modes* are workload specs (:class:`~repro.gen.spec.WorkloadSpec`
    objects or their dict form); *options* a :class:`FlowOptions` or
    partial knob dict.  Returns the submission response — including
    ``"deduped"`` — or, with ``wait=True``, the ``/result`` response
    carrying the QoR payload once the flow is done.
    """
    from repro.gen.spec import WorkloadSpec
    from repro.serve.client import ServeClient
    from repro.serve.service import workload_spec_dict

    mode_dicts: List[Dict[str, object]] = [
        workload_spec_dict(m) if isinstance(m, WorkloadSpec) else dict(m)
        for m in modes
    ]
    if isinstance(options, FlowOptions):
        options = options.to_dict()
    submission: Dict[str, object] = {
        "modes": mode_dicts,
        "options": dict(options or {}),
        "tenant": tenant,
        "priority": priority,
    }
    if name is not None:
        submission["name"] = name
    coerced = _coerce_strategies(strategies)
    if coerced is not None:
        submission["strategies"] = [s.value for s in coerced]
    client = ServeClient(url)
    response = client.submit(submission)
    if not wait:
        return response
    flow_id = str(response["id"])
    client.wait(flow_id, timeout=timeout)
    return client.result(flow_id)
