#!/usr/bin/env python3
"""Quickstart: merge two tiny mode circuits and inspect the result.

Builds two small LUT circuits by hand (an AND/XOR pipeline and an
OR/NOT pipeline sharing the same IO names), runs both the MDR baseline
and the paper's DCS flow, and prints:

* the Tunable circuit statistics (Tunable LUTs, merged connections),
* the Fig. 4-style parameterised bit expressions of one Tunable LUT,
* the reconfiguration bit counts and speed-up,
* a functional check that specialising the merged circuit reproduces
  each mode exactly.

Run:  python examples/quickstart.py
"""

from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable


def mode_a() -> LutCircuit:
    """Mode 0: y = (a AND b) XOR registered feedback."""
    c = LutCircuit("mode_a", k=4)
    c.add_input("a")
    c.add_input("b")
    c.add_block(
        "u", ("a", "b"),
        TruthTable.var(0, 2) & TruthTable.var(1, 2),
    )
    c.add_block(
        "state", ("state", "u"),
        TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
        registered=True,
    )
    c.add_block(
        "y", ("state", "a"),
        TruthTable.var(0, 2) | TruthTable.var(1, 2),
    )
    c.add_output("y")
    return c


def mode_b() -> LutCircuit:
    """Mode 1: y = NOT(a OR b), combinational."""
    c = LutCircuit("mode_b", k=4)
    c.add_input("a")
    c.add_input("b")
    c.add_block(
        "v", ("a", "b"),
        TruthTable.var(0, 2) | TruthTable.var(1, 2),
    )
    c.add_block("y", ("v",), ~TruthTable.var(0, 1))
    c.add_output("y")
    return c


def main() -> None:
    modes = [mode_a(), mode_b()]
    print("Mode circuits:")
    for i, circuit in enumerate(modes):
        print(f"  mode {i}: {circuit}")

    result = implement_multi_mode(
        "quickstart",
        modes,
        FlowOptions(inner_num=0.5, channel_width=6),
        strategies=(MergeStrategy.WIRE_LENGTH,),
    )
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
    tunable = dcs.tunable

    print(f"\nTunable circuit: {tunable.stats()}")
    print("\nA merged Tunable LUT (paper Fig. 4 bit expressions):")
    shared = next(
        (t for t in tunable.tluts.values() if len(t.members) == 2),
        next(iter(tunable.tluts.values())),
    )
    members = {
        m: blk.name for m, blk in sorted(shared.members.items())
    }
    print(f"  {shared.name} implements {members}")
    for row, expr in enumerate(shared.bit_expressions()):
        label = (
            f"row {row:02d}" if row < (1 << tunable.k)
            else "FF-select"
        )
        print(f"    {label}: {expr}")

    print("\nTunable connections (activation functions):")
    for conn in tunable.connections:
        print(
            f"  {conn.source} -> {conn.sink}: "
            f"activation = {conn.activation}"
        )

    print("\nReconfiguration cost on a mode switch:")
    print(
        "  MDR rewrites the whole region: "
        f"{result.mdr.cost.total} bits"
    )
    print(
        "  DCS rewrites LUTs + parameterised routing: "
        f"{dcs.cost.total} bits "
        f"({dcs.cost.routing_bits} routing bits are mode-dependent)"
    )
    print(
        "  speed-up: "
        f"{result.speedup(MergeStrategy.WIRE_LENGTH):.2f}x"
    )

    print("\nFunctional check (specialisation == original mode):")
    for i, circuit in enumerate(modes):
        ok = equivalent(tunable.specialize(i), circuit)
        print(f"  mode {i}: {'equivalent' if ok else 'MISMATCH'}")
        assert ok


if __name__ == "__main__":
    main()
