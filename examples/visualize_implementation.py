#!/usr/bin/env python3
"""Visualise a multi-mode implementation.

Implements one two-mode circuit (two small regex engines), then

* prints the ASCII floorplans of both separate MDR placements and the
  Tunable-circuit occupancy map (merged tiles show as ``2``),
* prints a channel-utilisation heat map per mode,
* writes an SVG of the merged routing (per-mode wire colours, shared
  wires dark) next to this script,
* prints the full Markdown implementation report.

Run:  python examples/visualize_implementation.py
"""

import pathlib

from repro.bench.regex import compile_regex_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.viz import (
    channel_heatmap,
    implementation_report,
    placement_floorplan,
    routing_svg,
    tunable_occupancy,
)


def main() -> None:
    modes = [
        compile_regex_circuit("ab+c(de)*", name="rx0", k=4),
        compile_regex_circuit("a(bc|de)+f", name="rx1", k=4),
    ]
    result = implement_multi_mode(
        "viz", modes,
        FlowOptions(seed=0, inner_num=0.2),
        strategies=(MergeStrategy.WIRE_LENGTH,),
    )
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]

    print("MDR floorplan of mode 0 (separate implementation):")
    print(placement_floorplan(result.mdr.implementations[0].placement))
    print()
    print("Tunable-circuit occupancy (2 = merged tile):")
    print(tunable_occupancy(dcs.tunable))
    print()
    print(channel_heatmap(dcs.routing, mode=0, orientation="x"))
    print()
    print(channel_heatmap(dcs.routing, mode=1, orientation="x"))

    svg_path = pathlib.Path(__file__).parent / "merged_routing.svg"
    svg_path.write_text(routing_svg(
        dcs.routing, title="merged regex pair"
    ))
    print(f"\nwrote {svg_path}")

    print()
    print(implementation_report(result))


if __name__ == "__main__":
    main()
