#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Drives :class:`repro.bench.harness.ExperimentHarness` over the three
application suites (RegExp, FIR, MCNC) and prints Table I, Fig. 5,
Fig. 6, Fig. 7 and the Section IV-C area numbers in the same
rows/series the paper reports.

Usage:
    python examples/run_paper_experiments.py [--effort quick|default|paper]
                                             [--seed N] [--workers N]
                                             [--cache-dir DIR | --no-cache]

``quick`` (default) runs 2 pairs per suite with light annealing — a few
minutes, same code path.  ``paper`` runs the full 10 pairs per suite
with VPR-strength annealing (hours in pure Python).  ``--workers`` fans
the independent multi-mode pairs over a process pool and the stage
cache makes reruns near-instant; results are bit-identical either way.
"""

import argparse
import sys
import time

from repro.bench.harness import SUITES, ExperimentHarness
from repro.exec import StageCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--effort", default="quick",
        choices=("quick", "default", "paper"),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)

    harness = ExperimentHarness(
        effort=args.effort, seed=args.seed, workers=args.workers,
        cache=StageCache(args.cache_dir, enabled=not args.no_cache),
    )
    print(
        "Running the paper's experiments "
        f"(effort={args.effort}, seed={args.seed})\n"
    )

    t0 = time.time()
    print(harness.print_table1(harness.table1()))
    print()

    print("Implementing multi-mode circuits (all suites)...")
    outcomes = harness.run_suites(SUITES, verbose=True)
    print()

    print(harness.print_figure5(harness.figure5(outcomes)))
    print()
    print(harness.print_figure6(harness.figure6(outcomes["RegExp"])))
    print()
    print(harness.print_figure7(harness.figure7(outcomes)))
    print()
    print(harness.print_area_table(harness.area_table()))
    print()
    print(harness.print_sta_table(harness.sta_table(outcomes)))
    print(f"\ntotal runtime: {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
