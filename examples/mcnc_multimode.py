#!/usr/bin/env python3
"""General (MCNC-class) circuits as a multi-mode pair — and BLIF input.

The paper's third experiment stresses the flow with *dissimilar*
circuits from the MCNC suite.  This example:

1. loads one mode from a BLIF description (the standard interchange
   format the MCNC suite ships in) and generates a second, structurally
   different MCNC-class circuit,
2. maps both to 4-LUTs through the synthesis front-end,
3. runs the DCS flow and shows how circuit dissimilarity affects the
   wire-length penalty and the number of matched connections compared
   to the similar-circuit suites.

Any real MCNC ``.blif`` file can be passed as argv[1] to replace the
embedded demo model.

Run:  python examples/mcnc_multimode.py [circuit.blif]
"""

import sys

from repro.bench.mcnc import McncProfile, generate_mcnc_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.netlist.blif import parse_blif, read_blif_file
from repro.netlist.simulate import equivalent
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map

# A small sequential BLIF model (stands in for an MCNC circuit; pass a
# real .blif path on the command line to use the genuine article).
DEMO_BLIF = """\
.model demo
.inputs pi0 pi1 pi2 pi3 pi4 pi5 pi6 pi7
.outputs po0 po1 po2
.latch s0n s0 re clk 0
.latch s1n s1 re clk 0
.names pi0 pi1 s0 t0
11- 1
--1 1
.names pi2 pi3 t1
01 1
10 1
.names t0 t1 s1 s0n
110 1
011 1
101 1
.names pi4 pi5 t1 s1n
111 1
100 1
.names s0 s1 po0
10 1
01 1
.names t0 pi6 po1
11 1
.names s0n pi7 t1 po2
1-1 1
-11 1
.end
"""


def main() -> None:
    if len(sys.argv) > 1:
        print(f"Loading BLIF from {sys.argv[1]}")
        network = read_blif_file(sys.argv[1])
    else:
        print("Using the embedded demo BLIF model "
              "(pass a .blif path to use a real MCNC circuit)")
        network = parse_blif(DEMO_BLIF)

    print(f"  parsed: {network}")
    mode0 = tech_map(optimize_network(network), k=4)
    print(f"  mapped: {mode0}")
    assert equivalent(network, mode0)
    print("  mapping verified equivalent by simulation")

    # Second mode: a synthetic MCNC-class circuit scaled to the same
    # size ballpark, so the pair fits one region.
    profile = McncProfile(
        name="partner",
        n_inputs=len(mode0.inputs),
        n_outputs=len(mode0.outputs),
        n_gates=max(12, int(mode0.n_luts() * 1.2)),
        register_fraction=0.1,
        locality=40,
        seed=11,
    )
    mode1 = generate_mcnc_circuit(profile, k=4)
    # Share the IO names so the pads merge (fixed chip pins).
    rename = {}
    for a, b in zip(mode1.inputs, mode0.inputs):
        rename[a] = b
    for a, b in zip(mode1.outputs, mode0.outputs):
        rename[a] = b
    mode1 = mode1.renamed(rename)
    print(f"  partner mode: {mode1}")

    print("\nImplementing the dissimilar pair (MDR vs DCS)...")
    result = implement_multi_mode(
        "mcnc_pair", [mode0, mode1], FlowOptions(inner_num=0.3),
    )
    for strategy in (
        MergeStrategy.EDGE_MATCHING, MergeStrategy.WIRE_LENGTH,
    ):
        dcs = result.dcs[strategy]
        tunable = dcs.tunable
        print(
            f"  DCS [{strategy.value}]: "
            f"{tunable.n_shared_connections()}/"
            f"{tunable.n_tunable_connections()} connections merged, "
            f"speed-up {result.speedup(strategy):.2f}x, "
            "wire usage "
            f"{100 * result.wirelength_ratio(strategy):.0f}% of MDR"
        )
    print(
        "\nDissimilar circuits merge fewer connections than the "
        "RegExp/FIR twins, which is exactly the spread the paper's "
        "MCNC experiment shows (its Fig. 7 error bars)."
    )

    tunable = result.dcs[MergeStrategy.WIRE_LENGTH].tunable
    for mode, original in enumerate((mode0, mode1)):
        assert equivalent(tunable.specialize(mode), original)
    print("Specialisation checks passed for both modes.")


if __name__ == "__main__":
    main()
