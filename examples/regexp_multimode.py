#!/usr/bin/env python3
"""Multi-mode regular-expression matcher (the paper's motivating case).

A network appliance must match one of several intrusion-detection
patterns at a time — the patterns are mutually exclusive in time, so
the matching engines form a multi-mode circuit.  This example:

1. compiles two Snort-style patterns into hardware matcher circuits
   (regex -> NFA -> one-hot LUT circuit, as the Sourdis et al. tool
   the paper uses),
2. verifies each engine against a software oracle on sample traffic,
3. implements the pair with MDR and with the paper's DCS flow
   (both merge strategies) and prints the reconfiguration bits,
   speed-up and per-mode wire usage,
4. demonstrates that the merged Tunable circuit, specialised for each
   mode, still matches the traffic exactly.

Run:  python examples/regexp_multimode.py          (a few minutes)
"""

from repro.bench.regex import (
    compile_regex_circuit,
    reference_match_positions,
)
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.netlist.simulate import simulate_lut

PATTERNS = [
    r"GET /(admin|login)\.php\?sid=[0-9a-f]+",
    r"(cmd|command)\.exe( /c)+ del [a-z]+",
]

TRAFFIC = (
    b"GET /admin.php?sid=0f3e HTTP/1.1 ... "
    b"cmd.exe /c del logs ... GET /login.php?sid=9"
)


def run_matcher(circuit, data: bytes):
    """Feed bytes through a matcher circuit; return match positions."""
    seq = []
    for byte in data:
        inputs = {
            f"ch[{i}]": bool(byte >> i & 1) for i in range(8)
        }
        inputs["valid"] = True
        seq.append(inputs)
    seq.append(
        {**{f"ch[{i}]": False for i in range(8)}, "valid": False}
    )
    trace = simulate_lut(circuit, seq)
    return [i for i, out in enumerate(trace) if out["match"]]


def main() -> None:
    print("Compiling matcher engines:")
    modes = []
    for i, pattern in enumerate(PATTERNS):
        circuit = compile_regex_circuit(pattern, name=f"engine{i}")
        modes.append(circuit)
        print(f"  mode {i}: {pattern!r} -> {circuit.n_luts()} LUTs")

    print("\nVerifying engines against the software oracle:")
    for i, (pattern, circuit) in enumerate(zip(PATTERNS, modes)):
        expected = reference_match_positions(pattern, TRAFFIC)
        got = run_matcher(circuit, TRAFFIC)
        status = "ok" if got == expected else "MISMATCH"
        print(f"  mode {i}: matches at {got} [{status}]")
        assert got == expected

    print("\nImplementing the multi-mode circuit (MDR vs DCS)...")
    result = implement_multi_mode(
        "regexp_pair", modes, FlowOptions(inner_num=0.2),
    )
    print(
        f"  region: {result.arch.nx}x{result.arch.ny} logic blocks, "
        f"channel width {result.arch.channel_width}"
    )
    print(
        f"  MDR mode switch rewrites {result.mdr.cost.total} bits "
        f"({result.mdr.cost.routing_bits} routing)"
    )
    print(
        "  differing routing bits between the separate "
        f"implementations: {result.mdr.diff.routing_bits}"
    )
    for strategy in (
        MergeStrategy.EDGE_MATCHING, MergeStrategy.WIRE_LENGTH,
    ):
        dcs = result.dcs[strategy]
        print(
            f"  DCS [{strategy.value}]: rewrites {dcs.cost.total} "
            f"bits ({dcs.cost.routing_bits} parameterised routing "
            f"bits), speed-up {result.speedup(strategy):.2f}x, "
            f"wire usage {100 * result.wirelength_ratio(strategy):.0f}% "
            "of MDR"
        )

    print("\nFunctional check of the merged circuit:")
    tunable = result.dcs[MergeStrategy.WIRE_LENGTH].tunable
    for i, pattern in enumerate(PATTERNS):
        specialised = tunable.specialize(i)
        got = run_matcher(specialised, TRAFFIC)
        expected = reference_match_positions(pattern, TRAFFIC)
        status = "ok" if got == expected else "MISMATCH"
        print(
            f"  specialised mode {i} matches at {got} [{status}]"
        )
        assert got == expected

    shared = tunable.n_shared_connections()
    total = tunable.n_tunable_connections()
    print(
        f"\nMerged circuit: {total} tunable connections, "
        f"{shared} active in both modes (no routing bits change "
        "for those on a mode switch)."
    )


if __name__ == "__main__":
    main()
