#!/usr/bin/env python3
"""Adaptive filtering as a multi-mode circuit (paper experiment 2).

A signal-processing front-end switches between a low-pass and a
high-pass FIR filter depending on channel conditions; only one filter
is live at a time.  The paper specialises each filter for its constant
coefficients (3x smaller than a generic filter) and merges the two
specialised filters into one reconfigurable region.

This example:

1. draws a random sparse low-pass / high-pass coefficient pair and
   builds both specialised datapaths (constants propagated into
   shift-add networks) plus the generic multiplier-based filter,
2. verifies the hardware against the software filter model,
3. reports the area story (specialised vs generic, multi-mode region
   vs both filters statically),
4. runs MDR and DCS and reports the reconfiguration speed-up.

Run:  python examples/fir_multimode.py          (a few minutes)
"""

from repro.bench.fir import (
    fir_coefficients,
    fir_network,
    generate_fir_circuit,
)
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.netlist.simulate import simulate_lut
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import int_to_inputs, word_to_int
from repro.synth.techmap import tech_map

SEED = 42
SAMPLES = [0, 10, 250, 128, 7, 63, 255, 1, 90, 180]


def drive(circuit, spec, samples):
    width = spec.accumulator_width()
    seq = [int_to_inputs("x", spec.data_width, s) for s in samples]
    trace = simulate_lut(circuit, seq)
    return [
        word_to_int([t[f"y[{i}]"] for i in range(width)])
        for t in trace
    ]


def main() -> None:
    lp_spec = fir_coefficients("lowpass", seed=SEED)
    hp_spec = fir_coefficients("highpass", seed=SEED)
    print("Filter specifications (random non-zero coefficients):")
    print(f"  low-pass : {lp_spec.coefficients}")
    print(f"  high-pass: {hp_spec.coefficients}")

    modes = []
    for spec, label in ((lp_spec, "lp"), (hp_spec, "hp")):
        circuit = tech_map(
            optimize_network(fir_network(spec, name=f"fir_{label}"))
        )
        modes.append(circuit)

    print("\nVerifying datapaths against the software model:")
    for spec, circuit, label in (
        (lp_spec, modes[0], "low-pass"),
        (hp_spec, modes[1], "high-pass"),
    ):
        got = drive(circuit, spec, SAMPLES)
        want = spec.response(SAMPLES)
        status = "ok" if got == want else "MISMATCH"
        print(f"  {label}: {status} ({circuit.n_luts()} LUTs)")
        assert got == want

    generic = generate_fir_circuit(
        "lowpass", seed=SEED, generic=True, name="fir_generic",
    )
    print("\nArea story (paper Section IV-C):")
    print(f"  generic filter (multipliers): {generic.n_luts()} LUTs")
    for circuit, label in zip(modes, ("low-pass", "high-pass")):
        pct = 100 * circuit.n_luts() / generic.n_luts()
        print(
            f"  specialised {label}: {circuit.n_luts()} LUTs "
            f"({pct:.0f}% of generic)"
        )
    biggest = max(c.n_luts() for c in modes)
    print(
        f"  multi-mode region holds the biggest mode: {biggest} LUTs "
        f"({100 * biggest / generic.n_luts():.0f}% of the generic "
        "filter; the paper reports ~33%)"
    )

    print("\nImplementing the multi-mode filter (MDR vs DCS)...")
    result = implement_multi_mode(
        "fir_pair", modes, FlowOptions(inner_num=0.2),
    )
    for strategy in (
        MergeStrategy.EDGE_MATCHING, MergeStrategy.WIRE_LENGTH,
    ):
        print(
            f"  DCS [{strategy.value}]: speed-up "
            f"{result.speedup(strategy):.2f}x, wire usage "
            f"{100 * result.wirelength_ratio(strategy):.0f}% of MDR"
        )

    print("\nFunctional check of the merged circuit:")
    tunable = result.dcs[MergeStrategy.WIRE_LENGTH].tunable
    for mode, (spec, label) in enumerate(
        ((lp_spec, "low-pass"), (hp_spec, "high-pass"))
    ):
        got = drive(tunable.specialize(mode), spec, SAMPLES)
        want = spec.response(SAMPLES)
        status = "ok" if got == want else "MISMATCH"
        print(f"  specialised {label}: {status}")
        assert got == want


if __name__ == "__main__":
    main()
