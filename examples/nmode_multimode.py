#!/usr/bin/env python3
"""Beyond two modes: a four-mode multi-mode circuit.

The paper formulates the flow for any number of modes ("if there are
for example 3 modes, we will need 2 bits m1m0") but evaluates pairs.
This example exercises the general case:

* four small mode circuits (two regex matchers, two FIR filters) are
  merged into one Tunable circuit;
* reconfiguration cost is reported per mode *transition* — with N > 2
  modes the paper's single number becomes an N x N matrix in the MDR
  accounting, while DCS rewrites only the parameterised bits,
  whichever transition is taken;
* the three mode-register encodings (binary, Gray, one-hot) are
  compared on expression shape and register activity.

Run:  python examples/nmode_multimode.py            (about a minute)
"""

from repro.bench.fir import generate_fir_circuit
from repro.bench.regex import compile_regex_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.core.modes import ModeEncoding
from repro.netlist.simulate import equivalent


def build_modes():
    """Four small, structurally different mode circuits."""
    return [
        compile_regex_circuit("ab+c", name="rx_abc", k=4),
        compile_regex_circuit("(ab|cd)e", name="rx_alt", k=4),
        generate_fir_circuit(
            "lowpass", seed=7, k=4, n_taps=6, name="fir_lp"
        ),
        generate_fir_circuit(
            "highpass", seed=9, k=4, n_taps=6, name="fir_hp"
        ),
    ]


def main() -> None:
    modes = build_modes()
    print("Mode circuits:")
    for i, circuit in enumerate(modes):
        print(f"  mode {i}: {circuit.name:8s} {circuit.n_luts():4d} "
              "4-LUTs")

    options = FlowOptions(seed=0, inner_num=0.2)
    result = implement_multi_mode(
        "fourmode", modes, options,
        strategies=(MergeStrategy.WIRE_LENGTH,),
    )
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]

    print(f"\nregion: {result.arch.nx}x{result.arch.ny} CLBs, "
          f"channel width {result.arch.channel_width}")
    print(f"tunable circuit: {dcs.tunable.stats()}")

    # Correctness: every specialisation must match its mode circuit.
    for i, circuit in enumerate(modes):
        assert equivalent(circuit, dcs.tunable.specialize(i)), i
    print("all four specialisations simulation-equivalent: OK")

    # Reconfiguration accounting.  MDR rewrites the whole region on
    # any transition; DCS rewrites LUT bits + parameterised routing
    # bits, also transition-independent in the paper's accounting.
    print(f"\nMDR rewrites {result.mdr.cost.total} bits on every "
          "transition")
    print(f"DCS rewrites {dcs.cost.total} bits "
          f"({dcs.cost.routing_bits} parameterised routing); "
          f"speed-up {result.speedup(MergeStrategy.WIRE_LENGTH):.2f}x")

    # Mode-register encodings.
    print("\nmode-register encodings (4 modes):")
    header = f"  {'style':8s} {'bits':>4s}  products"
    print(header)
    for style in ("binary", "gray", "onehot"):
        enc = ModeEncoding(4, style=style)
        products = ", ".join(
            enc.mode_product(m) for m in range(4)
        )
        print(f"  {style:8s} {enc.n_bits:4d}  {products}")

    print("\nregister bits flipped per transition (from -> to):")
    for style in ("binary", "gray", "onehot"):
        enc = ModeEncoding(4, style=style)
        flips = [
            enc.register_hamming(a, b)
            for a in range(4) for b in range(4) if a != b
        ]
        print(f"  {style:8s} mean {sum(flips) / len(flips):.2f} "
              f"max {max(flips)}")


if __name__ == "__main__":
    main()
