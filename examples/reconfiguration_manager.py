#!/usr/bin/env python3
"""Runtime view: the reconfiguration manager and the frame model.

The previous examples measure *how many* bits a mode switch rewrites;
this one shows the runtime machinery doing it:

1. implement a small two-mode circuit with the DCS flow,
2. extract the *parameterised configuration* — static bits plus one
   Boolean function of the mode bits per parameterised bit (printed in
   the paper's ``m0`` notation),
3. replay a mode-switch sequence through the software reconfiguration
   manager, auditing the configuration memory after every switch,
4. apply the frame model (the paper's outlook): how many frames the
   switch touches as-routed vs after packing the parameterised bits.

Run:  python examples/reconfiguration_manager.py
"""

from collections import Counter

from repro.arch.frames import (
    FrameAllocator,
    build_frame_layout,
    dcs_frame_cost,
    mdr_frame_cost,
)
from repro.arch.rrg import build_rrg
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.manager import (
    ParameterizedConfiguration,
    ReconfigurationManager,
)
from repro.core.merge import MergeStrategy
from repro.core.reconfig import varying_bits
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable


def two_mode_circuits():
    """Two small, different circuits sharing the same IO names."""
    m0 = LutCircuit("mode0", 4)
    m0.add_input("i0")
    m0.add_input("i1")
    m0.add_block("u", ("i0", "i1"),
                 TruthTable.var(0, 2) & TruthTable.var(1, 2))
    m0.add_block("v", ("u", "i1"),
                 TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
    m0.add_output("v")

    m1 = LutCircuit("mode1", 4)
    m1.add_input("i0")
    m1.add_input("i1")
    m1.add_block("w", ("i0", "i1"),
                 TruthTable.var(0, 2) | TruthTable.var(1, 2))
    m1.add_block("z", ("w",), ~TruthTable.var(0, 1),
                 registered=True)
    m1.add_output("z")
    return m0, m1


def main() -> None:
    modes = list(two_mode_circuits())
    result = implement_multi_mode(
        "runtime", modes,
        FlowOptions(inner_num=0.5, channel_width=6),
        strategies=(MergeStrategy.WIRE_LENGTH,),
    )
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
    n_routing_bits = result.mdr.cost.routing_bits

    config = ParameterizedConfiguration.from_routing(
        dcs.routing, n_routing_bits
    )
    print("Parameterised configuration:")
    print(f"  routing bits total: {config.n_bits_total}")
    print(f"  statically on:      {len(config.static_on)}")
    print(f"  parameterised:      {config.n_parameterized()}")
    expressions = Counter(
        config.bit_expression(bit) for bit in config.parameterized
    )
    print("  bit expressions (paper Fig. 4 notation):")
    for expression, count in sorted(expressions.items()):
        print(f"    {expression!r}: {count} bits")

    print("\nReplaying mode switches (policy = evaluate):")
    manager = ReconfigurationManager(config)
    record = manager.load_initial(0)
    print(f"  power-up into mode 0: {record.bits_written} bits "
          "(full load)")
    for mode in (1, 0, 1, 1):
        record = manager.switch(mode)
        manager.verify()
        print(
            f"  switch {record.from_mode} -> {record.to_mode}: "
            f"{record.bits_written} bits rewritten"
        )

    print("\nMinimal-write policy (only changed bits):")
    minimal = ReconfigurationManager(config, policy="minimal")
    minimal.load_initial(0)
    record = minimal.switch(1)
    minimal.verify()
    print(f"  switch 0 -> 1: {record.bits_written} bits "
          f"(evaluate policy wrote {config.n_parameterized()})")

    print("\nFrame model (paper outlook, frame size 64):")
    rrg = build_rrg(result.arch)
    layout = build_frame_layout(result.arch, rrg, frame_size=64)
    params = varying_bits(
        [dcs.routing.bits_on(m) for m in range(2)]
    )
    mdr_frames = mdr_frame_cost(layout)
    dcs_frames = dcs_frame_cost(layout, params)
    report = FrameAllocator(layout, rrg).report(params)
    print(f"  region: {layout.n_frames} frames "
          f"({layout.n_routing_frames} routing)")
    print(f"  MDR rewrites {mdr_frames.total} frames")
    print(f"  DCS as-routed touches {dcs_frames.routing_frames} "
          "routing frames")
    print(f"  after column packing: {report['column_packed']} "
          f"(ideal bound {report['ideal']})")


if __name__ == "__main__":
    main()
