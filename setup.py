"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .`` via
pyproject build isolation) cannot build the editable wheel.  This shim
lets ``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
