"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .`` via
pyproject build isolation) cannot build the editable wheel.  This shim
lets ``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``setup.cfg``
(including the ``repro`` console script); there is deliberately no
``pyproject.toml``, whose presence would force the PEP 517/660 path.
The CI lint job smoke-tests this install (``pip install -e .`` +
``repro --help``) so packaging breakage fails fast.
"""

from setuptools import setup

setup()
